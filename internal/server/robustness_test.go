package server

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/transport"
)

// rawDial opens a raw transport connection to the lab server, bypassing
// the client library, for protocol-abuse tests.
func rawDial(t *testing.T, l *lab) transport.Conn {
	t.Helper()
	conn, err := l.net.DialFrom("attacker", "server:1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sendMsg(t *testing.T, conn transport.Conn, msg protocol.Message) {
	t.Helper()
	wire, err := protocol.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(wire); err != nil {
		t.Fatal(err)
	}
}

func TestServerDropsGarbageHandshake(t *testing.T) {
	l := newLab(t)
	conn := rawDial(t, l)
	if err := conn.Send([]byte("{{{{ not json")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection without crashing.
	if _, err := conn.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("recv = %v, want closed", err)
	}
	// And keep serving legitimate clients.
	c := l.dial("Legit", "participant", 2)
	if err := c.Join("class"); err != nil {
		t.Errorf("server unusable after garbage: %v", err)
	}
}

func TestServerRejectsNonHelloFirstMessage(t *testing.T) {
	l := newLab(t)
	conn := rawDial(t, l)
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: "premature"})
	sendMsg(t, conn, msg)
	if _, err := conn.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("recv = %v, want closed", err)
	}
}

func TestServerSurvivesMalformedBodies(t *testing.T) {
	l := newLab(t)
	conn := rawDial(t, l)
	hello := protocol.MustNew(protocol.THello, protocol.HelloBody{Name: "abuser", Priority: 2})
	hello.Seq = 1
	sendMsg(t, conn, hello)
	if _, err := conn.Recv(); err != nil { // welcome
		t.Fatal(err)
	}
	// Now a barrage of malformed requests: wrong body shapes, unknown
	// types, missing groups. Every one must be answered or ignored, never
	// crash the session.
	abuses := []protocol.Message{
		{Type: protocol.TJoin, Seq: 2, Body: []byte(`{"group": 42}`)},
		{Type: protocol.TFloorRequest, Seq: 3, Group: "ghost", Body: []byte(`{"mode":"imaginary"}`)},
		{Type: protocol.TFloorRequest, Seq: 4, Group: "ghost", Body: []byte(`{"mode":"free-access"}`)},
		{Type: "warp_core_breach", Seq: 5},
		{Type: protocol.TTokenPass, Seq: 6, Group: "ghost", Body: []byte(`{"to":""}`)},
		{Type: protocol.TInviteReply, Seq: 7, Body: []byte(`{"invite_id":"NaN"}`)},
		{Type: protocol.TAnnotate, Seq: 8, Group: "ghost", Body: []byte(`{"kind":"explode"}`)},
		{Type: protocol.TClockSync, Seq: 9, Body: []byte(`[]`)},
	}
	for _, msg := range abuses {
		sendMsg(t, conn, msg)
	}
	// Collect replies; each abuse with a Seq gets an err (or is ignored
	// for unknown types, which reply too per dispatch).
	errCount := 0
	deadline := time.After(2 * time.Second)
	for errCount < 7 {
		select {
		case <-deadline:
			t.Fatalf("only %d error replies", errCount)
		default:
		}
		wire, err := conn.Recv()
		if err != nil {
			t.Fatalf("session died: %v", err)
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			continue
		}
		if msg.Type == protocol.TErr {
			errCount++
		}
	}
	// The session is still usable afterwards.
	join := protocol.MustNew(protocol.TJoin, protocol.GroupBody{Group: "recovery"})
	join.Seq = 100
	sendMsg(t, conn, join)
	for {
		wire, err := conn.Recv()
		if err != nil {
			t.Fatalf("post-abuse recv: %v", err)
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			continue
		}
		if msg.Seq == 100 {
			if msg.Type != protocol.TAck {
				t.Errorf("post-abuse join: %v", msg.Type)
			}
			break
		}
	}
}

func TestServerPartitionTurnsLightRedThenHeals(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	student := l.dial("Student", "participant", 2)
	_ = teacher.Join("class")
	_ = student.Join("class")
	waitFor(t, "initial green", func() bool {
		return l.srv.Lights()[student.MemberID()] == Green
	})
	// Partition the student from the server: probes stop flowing.
	l.net.Partition("client", netsim.Host("server:1"), true)
	waitFor(t, "red during partition", func() bool {
		return l.srv.Lights()[student.MemberID()] == Red
	})
	// Heal: status reports resume and the light recovers.
	l.net.Partition("client", netsim.Host("server:1"), false)
	waitFor(t, "green after heal", func() bool {
		return l.srv.Lights()[student.MemberID()] == Green
	})
}

func TestServerManyClientsJoinLeaveChurn(t *testing.T) {
	l := newLab(t)
	const n = 12
	clients := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		clients = append(clients, l.dial("churn", "participant", 2))
	}
	for round := 0; round < 3; round++ {
		for _, c := range clients {
			if err := c.Join("class"); err != nil {
				t.Fatal(err)
			}
		}
		for i, c := range clients {
			if i%2 == round%2 {
				if err := c.Leave("class"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// The registry stays consistent: every remaining member is real.
	members, err := l.srv.Registry().GroupMembers("class")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) == 0 || len(members) > n {
		t.Errorf("members = %d", len(members))
	}
}

// TestReplayRequiresMembership: boards are group-private; a non-member
// cannot siphon another group's history via TReplay.
func TestReplayRequiresMembership(t *testing.T) {
	l := newLab(t)
	alice := l.dial("Alice", "participant", 2)
	eve := l.dial("Eve", "participant", 2)
	_ = alice.Join("secret")
	if err := alice.Chat("secret", "the exam answers"); err != nil {
		t.Fatal(err)
	}
	if err := eve.Replay("secret", 0); !errors.Is(err, client.ErrDenied) {
		t.Errorf("non-member replay: %v", err)
	}
	if eve.Board("secret").Seq() != 0 {
		t.Error("board history leaked to a non-member")
	}
	// A member replays fine.
	if err := alice.Replay("secret", 0); err != nil {
		t.Errorf("member replay: %v", err)
	}
}
