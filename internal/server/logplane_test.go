package server

import (
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
)

// eventTap counts server messages a client receives, by type, and
// retains the floor-event and snapshot bodies for assertions.
type eventTap struct {
	mu     sync.Mutex
	types  map[protocol.Type]int
	events map[string]int // FloorEventBody.Event → count
	floors []protocol.FloorEventBody
	snaps  []protocol.SnapshotBody
}

func newEventTap() *eventTap {
	return &eventTap{types: make(map[protocol.Type]int), events: make(map[string]int)}
}

func (tap *eventTap) observe(msg protocol.Message) {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	tap.types[msg.Type]++
	switch msg.Type {
	case protocol.TFloorEvent:
		var body protocol.FloorEventBody
		if msg.Into(&body) == nil {
			tap.events[body.Event]++
			tap.floors = append(tap.floors, body)
		}
	case protocol.TSnapshot:
		var body protocol.SnapshotBody
		if msg.Into(&body) == nil {
			tap.snaps = append(tap.snaps, body)
		}
	}
}

func (tap *eventTap) typeCount(t protocol.Type) int {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	return tap.types[t]
}

func (tap *eventTap) eventCount(e string) int {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	return tap.events[e]
}

// TestStallPastRingSnapshotBackfill is the tentpole's acceptance test:
// a member stalled through more logged events than the ring retains
// must converge — floor, board, suspension-free state AND a pending
// invitation — through the log plane alone once the stall lifts. With
// the ring wrapped, that means exactly the TBackfill→TSnapshot path:
// the test asserts a snapshot arrived and that none of the deleted
// per-class repairs did (no "resync" floor events exist anymore).
func TestStallPastRingSnapshotBackfill(t *testing.T) {
	const logCap = 8
	n := netsim.New(21)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
		SendQueueCap:  4,
		LogCap:        logCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	tap := newEventTap()
	slow, err := client.Dial(client.Config{
		Network: n.From("slowhost"), Addr: "server:1",
		Name: "slow", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
		OnEvent: tap.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slow.Close)
	writer, err := client.Dial(client.Config{
		Network: n.From("fasthost"), Addr: "server:1",
		Name: "writer", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(writer.Close)
	for _, c := range []*client.Client{writer, slow} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}

	// Joining already delivered one snapshot; only snapshots after this
	// point prove the backfill fallback fired.
	snapshotsBefore := tap.typeCount(protocol.TSnapshot)

	// Freeze the slow member's link, then push far more logged state
	// than the ring retains: board lines, a floor grant, and an
	// invitation into a breakout (the member-directed log).
	n.Stall("server", "slowhost", true)
	defer n.Stall("server", "slowhost", false)
	const lines = 3 * logCap
	for i := 0; i < lines; i++ {
		if err := writer.Chat("class", "line"); err != nil {
			t.Fatal(err)
		}
		// Flush each line into its own logged event: this test is about
		// wrapping the ring, not about the storm coalescing that would
		// otherwise compress the burst into a handful of events.
		srv.FlushBoardBatches()
	}
	if _, err := writer.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := writer.Join("breakout"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Invite("breakout", slow.MemberID()); err != nil {
		t.Fatal(err)
	}

	n.Stall("server", "slowhost", false)
	waitFor(t, "board convergence through snapshot", func() bool {
		return slow.Board("class").Seq() == int64(lines)
	})
	waitFor(t, "floor convergence through snapshot", func() bool {
		return slow.Holder("class") == writer.MemberID()
	})
	waitFor(t, "invitation backfill", func() bool {
		return len(slow.PendingInvites()) == 1
	})

	// Convergence came from the one repair path: a snapshot (the ring
	// wrapped, so a suffix replay was impossible) — and none of PR 2's
	// per-class resync pushes, which no longer exist.
	if tap.typeCount(protocol.TSnapshot) <= snapshotsBefore {
		t.Error("no post-stall TSnapshot received: convergence bypassed the wrapped-ring fallback")
	}
	if got := tap.eventCount("resync"); got != 0 {
		t.Errorf("%d per-class resync floor events received; the log plane should have replaced them", got)
	}
}

// TestReconnectDisplacesStaleSession covers token resume while the
// server still believes the old connection is alive (a netsim Drop is
// invisible to the server until probes time out): the reconnect must
// displace the stale session and the client must converge on state it
// missed while dead — without re-joining.
func TestReconnectDisplacesStaleSession(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	student := l.dial("Student", "participant", 2)
	for _, c := range []*client.Client{teacher, student} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	events := student.Subscribe(client.FloorEvents)

	if !student.Drop() {
		t.Fatal("netsim drop failed")
	}
	// While the student is dead: board history and a floor grant.
	if err := teacher.Chat("class", "missed line"); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}

	if err := student.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	if student.MemberID() == "" {
		t.Fatal("no member identity after reconnect")
	}
	waitFor(t, "board resume", func() bool {
		return student.Board("class").Seq() == 1
	})
	waitFor(t, "floor resume", func() bool {
		return student.Holder("class") == teacher.MemberID()
	})
	// The pre-drop subscription is still live: it must deliver the
	// post-reconnect floor state (the snapshot's restatement or a later
	// live event), not be closed.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("subscription closed by reconnect")
			}
			if ev.Floor.Holder == teacher.MemberID() {
				return
			}
		case <-deadline:
			t.Fatal("no floor event crossed the reconnect")
		}
	}
}

// TestModeSwitchPinOverWire drives the chair-pinned policy end to end:
// the chair pins moderated-queue, a participant can neither TModeSwitch
// nor floor-request the group out of it, the mode_switch event reaches
// subscribers, and unpinning reopens mode entry.
func TestModeSwitchPinOverWire(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	student := l.dial("Student", "participant", 2)
	if err := teacher.Join("class"); err != nil { // first joiner chairs
		t.Fatal(err)
	}
	if err := student.Join("class"); err != nil {
		t.Fatal(err)
	}
	events := student.Subscribe(client.FloorEvents)

	if err := teacher.SwitchMode("class", floor.ModeratedQueue, true); err != nil {
		t.Fatalf("chair pin: %v", err)
	}
	if !l.srv.FloorController().Pinned("class") {
		t.Fatal("pin not recorded")
	}
	// The switch is a logged broadcast.
	deadline := time.After(3 * time.Second)
	for switched := false; !switched; {
		select {
		case ev := <-events:
			switched = ev.Floor.Event == "mode_switch" && ev.Floor.Mode == floor.ModeratedQueue.String()
		case <-deadline:
			t.Fatal("mode_switch event never arrived")
		}
	}
	// Non-chairs bounce off the pin, both paths.
	if err := student.SwitchMode("class", floor.FreeAccess, false); err == nil {
		t.Error("participant switch on pinned group should be denied")
	}
	if _, err := student.RequestFloor("class", floor.FreeAccess, ""); err == nil {
		t.Error("participant mode entry on pinned group should be denied")
	}
	if got := l.srv.FloorController().ModeOf("class"); got != floor.ModeratedQueue {
		t.Fatalf("mode drifted to %v", got)
	}
	// Chair unpins; the student may move the group again.
	if err := teacher.SwitchMode("class", floor.FreeAccess, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "participant entry after unpin", func() bool {
		_, err := student.RequestFloor("class", floor.EqualControl, "")
		return err == nil
	})
}

// TestGroupNamesCannotShadowMemberLogs: the "~" keyspace is reserved
// for member event logs; joining such a group must be rejected.
func TestGroupNamesCannotShadowMemberLogs(t *testing.T) {
	l := newLab(t)
	c := l.dial("Sneak", "participant", 2)
	if err := c.Join("~victim#1"); err == nil {
		t.Fatal("'~' group name should be rejected")
	}
}
