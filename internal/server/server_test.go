package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// lab spins up a server on a simulated network plus helper dialers.
type lab struct {
	t   *testing.T
	net *netsim.Net
	srv *Server
	mon *resource.Monitor
}

func newLab(t *testing.T) *lab {
	t.Helper()
	n := netsim.New(1)
	mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: 0.5, Beta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		Monitor:       mon,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return &lab{t: t, net: n, srv: srv, mon: mon}
}

func (l *lab) dial(name, role string, priority int) *client.Client {
	l.t.Helper()
	c, err := client.Dial(client.Config{
		Network:  l.net,
		Addr:     "server:1",
		Name:     name,
		Role:     role,
		Priority: priority,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		l.t.Fatalf("Dial(%s): %v", name, err)
	}
	l.t.Cleanup(c.Close)
	return c
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHandshakeAssignsMemberIDs(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Prof. Shih", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	if teacher.MemberID() == "" || alice.MemberID() == "" {
		t.Fatal("empty member IDs")
	}
	if teacher.MemberID() == alice.MemberID() {
		t.Error("IDs must be unique")
	}
	if !strings.HasPrefix(teacher.MemberID(), "prof--shih#") {
		t.Errorf("sanitized ID = %q", teacher.MemberID())
	}
}

func TestJoinAutoCreatesWithChair(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	if err := teacher.Join("class"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Join("class"); err != nil {
		t.Fatal(err)
	}
	chair, err := l.srv.Registry().Chair("class")
	if err != nil {
		t.Fatal(err)
	}
	if string(chair) != teacher.MemberID() {
		t.Errorf("chair = %q, want the first joiner", chair)
	}
	members, _ := l.srv.Registry().GroupMembers("class")
	if len(members) != 2 {
		t.Errorf("members = %v", members)
	}
}

func TestFreeAccessChatConvergesBoards(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	_ = teacher.Join("class")
	_ = alice.Join("class")
	if err := teacher.Chat("class", "welcome everyone"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Chat("class", "hello!"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "boards to converge", func() bool {
		return teacher.Board("class").Seq() == 2 && alice.Board("class").Seq() == 2
	})
	if !teacher.Board("class").Equal(alice.Board("class")) {
		t.Error("boards diverged")
	}
	rendered := alice.Board("class").Render()
	if !strings.Contains(rendered, "welcome everyone") || !strings.Contains(rendered, "hello!") {
		t.Errorf("render = %q", rendered)
	}
}

func TestEqualControlMutesNonHolders(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	bob := l.dial("Bob", "participant", 2)
	for _, c := range []*client.Client{teacher, alice, bob} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := alice.RequestFloor("class", floor.EqualControl, "")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted || dec.Holder != alice.MemberID() {
		t.Fatalf("dec = %+v", dec)
	}
	// Holder speaks.
	if err := alice.Chat("class", "I have the floor"); err != nil {
		t.Fatal(err)
	}
	// Others are muted.
	if err := bob.Chat("class", "interrupting"); !errors.Is(err, client.ErrDenied) {
		t.Errorf("bob chat: %v", err)
	}
	// Bob requests and queues.
	dec2, err := bob.RequestFloor("class", floor.EqualControl, "")
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Granted || dec2.QueuePosition != 1 {
		t.Errorf("dec2 = %+v", dec2)
	}
	// Alice passes the token directly to the teacher.
	if err := alice.PassToken("class", teacher.MemberID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "holder update", func() bool {
		return teacher.Holder("class") == teacher.MemberID()
	})
	if err := teacher.Chat("class", "thanks"); err != nil {
		t.Errorf("new holder muted: %v", err)
	}
	if err := alice.Chat("class", "still talking"); !errors.Is(err, client.ErrDenied) {
		t.Errorf("old holder should be muted: %v", err)
	}
	// Release promotes bob from the queue.
	if err := teacher.ReleaseFloor("class"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bob promoted", func() bool {
		return bob.Holder("class") == bob.MemberID()
	})
	if err := bob.Chat("class", "finally"); err != nil {
		t.Errorf("promoted holder muted: %v", err)
	}
}

func TestInviteFlowBuildsSubgroup(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	bob := l.dial("Bob", "participant", 2)
	for _, c := range []*client.Client{teacher, alice, bob} {
		_ = c.Join("class")
	}
	// Alice creates a breakout and invites Bob.
	if err := alice.Join("breakout-1"); err != nil {
		t.Fatal(err)
	}
	inviteID, err := alice.Invite("breakout-1", bob.MemberID())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "invite delivery", func() bool {
		return len(bob.PendingInvites()) == 1
	})
	got := bob.PendingInvites()[0]
	if got.InviteID != inviteID || got.Group != "breakout-1" || got.From != alice.MemberID() {
		t.Errorf("invite = %+v", got)
	}
	if err := bob.ReplyInvite(inviteID, true); err != nil {
		t.Fatal(err)
	}
	if !l.srv.Registry().IsMember("breakout-1", groupID(bob.MemberID())) {
		t.Error("bob should be in the breakout")
	}
	// Both can discuss in the sub-group while the class floor is
	// unaffected.
	if _, err := alice.RequestFloor("breakout-1", floor.GroupDiscussion, ""); err != nil {
		t.Fatal(err)
	}
	if err := bob.Chat("breakout-1", "private idea"); err != nil {
		t.Errorf("subgroup chat: %v", err)
	}
	waitFor(t, "subgroup board", func() bool {
		return alice.Board("breakout-1").Seq() >= 1
	})
	// Teacher (not in the breakout) must not see the breakout board.
	if teacher.Board("breakout-1").Seq() != 0 {
		t.Error("breakout leaked to non-member")
	}
}

func TestDirectContactPrivateWindow(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	bob := l.dial("Bob", "participant", 2)
	for _, c := range []*client.Client{teacher, alice, bob} {
		_ = c.Join("class")
	}
	dec, err := alice.RequestFloor("class", floor.DirectContact, bob.MemberID())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted || dec.Target != bob.MemberID() {
		t.Fatalf("dec = %+v", dec)
	}
	if err := alice.ChatPrivate("class", bob.MemberID(), "psst"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "private delivery", func() bool {
		return len(bob.PrivateMessages()) == 1
	})
	if bob.PrivateMessages()[0].Data != "psst" {
		t.Errorf("private = %+v", bob.PrivateMessages())
	}
	// The teacher sees nothing.
	if len(teacher.PrivateMessages()) != 0 {
		t.Error("private message leaked")
	}
	// No contact pair with the teacher: denied.
	if err := alice.ChatPrivate("class", teacher.MemberID(), "hi"); !errors.Is(err, client.ErrDenied) {
		t.Errorf("uncontacted private: %v", err)
	}
}

func TestClockSyncOverWire(t *testing.T) {
	l := newLab(t)
	c := l.dial("Syncer", "participant", 2)
	offset, err := c.SyncClock()
	if err != nil {
		t.Fatal(err)
	}
	// Client and server share the real clock here: offset ≈ 0 (bounded
	// by the simulated RTT).
	if offset < -50*time.Millisecond || offset > 50*time.Millisecond {
		t.Errorf("offset = %v", offset)
	}
	if _, err := c.GlobalNow(); err != nil {
		t.Errorf("GlobalNow: %v", err)
	}
}

func TestStatusLightsTurnRedOnCrash(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	student := l.dial("Student", "participant", 2)
	_ = teacher.Join("class")
	_ = student.Join("class")
	waitFor(t, "green lights", func() bool {
		lights := l.srv.Lights()
		return lights[teacher.MemberID()] == Green && lights[student.MemberID()] == Green
	})
	// The student's machine crashes (no goodbye).
	if !student.Drop() {
		t.Fatal("Drop should work over netsim")
	}
	waitFor(t, "red light", func() bool {
		return l.srv.Lights()[student.MemberID()] == Red
	})
	// The teacher's window shows the red light too (Figure 3c).
	waitFor(t, "teacher sees red", func() bool {
		return teacher.Lights()[student.MemberID()] == "red"
	})
	if teacher.Lights()[teacher.MemberID()] != "green" {
		t.Error("teacher's own light should stay green")
	}
}

func TestMediaSuspendOverWire(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	carol := l.dial("Carol", "participant", 1)
	_ = teacher.Join("class")
	_ = carol.Join("class")
	// Degrade resources into [β, α): the next arbitration suspends carol
	// (lowest priority).
	l.mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3})
	dec, err := teacher.RequestFloor("class", floor.FreeAccess, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Suspended) != 1 || dec.Suspended[0] != carol.MemberID() {
		t.Fatalf("suspended = %v", dec.Suspended)
	}
	// Carol cannot send while suspended.
	if err := carol.Chat("class", "am I muted?"); !errors.Is(err, client.ErrDenied) {
		t.Errorf("suspended chat: %v", err)
	}
	waitFor(t, "suspend notice", func() bool {
		for _, n := range carol.SuspendNotices() {
			if n.Member == carol.MemberID() && n.Level == "degraded" {
				return true
			}
		}
		return false
	})
	// Recovery: resources return to normal; the probe loop reinstates.
	l.mon.Set(resource.Vector{Network: 1, CPU: 1, Memory: 1})
	waitFor(t, "reinstatement", func() bool {
		return carol.Chat("class", "back!") == nil
	})
}

func TestAbortBelowBetaOverWire(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	_ = teacher.Join("class")
	l.mon.Set(resource.Vector{Network: 0.05, CPU: 0.05, Memory: 0.05})
	_, err := teacher.RequestFloor("class", floor.FreeAccess, "")
	if !errors.Is(err, client.ErrDenied) {
		t.Errorf("err = %v, want denial (Abort-Arbitrate)", err)
	}
}

func TestLateJoinerReplay(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	_ = teacher.Join("class")
	for i := 0; i < 5; i++ {
		if err := teacher.Annotate("class", "draw", "stroke"); err != nil {
			t.Fatal(err)
		}
	}
	late := l.dial("Late", "participant", 2)
	if err := late.Join("class"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replay", func() bool {
		return late.Board("class").Seq() == 5
	})
	if len(late.Board("class").Strokes()) != 5 {
		t.Errorf("strokes = %d", len(late.Board("class").Strokes()))
	}
}

func TestPresentationBroadcastChairOnly(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	alice := l.dial("Alice", "participant", 2)
	_ = teacher.Join("class")
	_ = alice.Join("class")
	body := presentBody()
	if err := alice.StartPresentation("class", body); !errors.Is(err, client.ErrDenied) {
		t.Errorf("non-chair presentation: %v", err)
	}
	if err := teacher.StartPresentation("class", body); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "presentation delivery", func() bool {
		return alice.Presentation() != nil
	})
	got := alice.Presentation()
	if len(got.Objects) != 1 || got.Objects[0].ID != "slide" {
		t.Errorf("presentation = %+v", got)
	}
}

func TestByeClosesCleanly(t *testing.T) {
	l := newLab(t)
	c := l.dial("Quitter", "participant", 2)
	id := c.MemberID()
	_ = c.Join("class")
	c.Close()
	waitFor(t, "red light after bye", func() bool {
		return l.srv.Lights()[id] == Red
	})
}

func TestServerRequiresNetwork(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil network should fail")
	}
}

// groupID converts a wire member ID into the registry's key type.
func groupID(s string) group.MemberID { return group.MemberID(s) }

func presentBody() protocol.PresentBody {
	return protocol.PresentBody{
		StartGlobalNanos: 12345,
		Objects: []protocol.PresentObject{
			{ID: "slide", Kind: "image", DurationNanos: int64(10 * time.Second)},
		},
	}
}
