// Package server implements the DMPS server: the centralized group
// administration and floor control of the paper ("the floor control model
// is managed by group administration of the DMPS server; all the users'
// floor control request inputs are sent to the server"), the global clock
// master, per-mode message routing, the sequenced whiteboard/message
// window, and the connection-status monitor behind the Figure-3
// red/green lights.
//
// Delivery runs on an asynchronous broadcast plane: every session owns a
// bounded outbound queue drained by its own writer goroutine, and a
// group broadcast encodes the message exactly once, handing the same
// wire bytes to each recipient's queue. Handler goroutines therefore
// never block on a peer's socket — a client that stops reading backs up
// only its own queue, where the slow-consumer policy (count-and-drop by
// default, optionally disconnect) applies and the per-session
// backpressure counters (queue depth, drops) surface through
// Server.SessionStats and the lights broadcast.
//
// State reaches clients through one sequenced event-log plane
// (internal/grouplog): every state broadcast — floor events,
// suspend/resume, board operations, mode switches, invitations — is
// appended to its group's log first, stamped with per-class sequence
// numbers (Message.Class/CSeq, plus the log-wide GSeq) and fanned out
// as those bytes — to the sessions whose event-class mask admits the
// class; the rest pay nothing, which is what per-class sequencing
// buys. A recipient that took drops sees the hole (or learns from the
// heads digest on the lights broadcast that it is behind) and asks
// TBackfill for the missing suffix; the log compacts class-wise under
// pressure, so the reply is usually a short compacted suffix anchored
// on each class's latest state-bearing restatement, with one compact
// TSnapshot only when a needed class no longer connects. The same
// path serves late joiners, explicit replays and token-based session
// reconnects. Queue restatements coalesce per CoalesceInterval tick,
// and members silent past SessionTTL are reaped — tokens, directory
// entries and member logs track the live population.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/clock"
	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/trace"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// Light is a connection-status light (paper Figure 3).
type Light string

const (
	// Green: the client is connected and answering probes.
	Green Light = "green"
	// Red: the client has disconnected or stopped answering.
	Red Light = "red"
)

// SlowConsumerPolicy selects what happens when a session's bounded
// outbound queue overflows — i.e. the client reads slower than the
// server produces for it.
type SlowConsumerPolicy int

const (
	// DropNewest (the default) drops the message that does not fit and
	// counts it in the session's drop counter; nobody else is affected.
	// State-carrying traffic heals afterwards: replies never drop (they
	// block the requester's own handler instead), and every logged state
	// event — floor, suspend/resume, board, mode switches, invitations —
	// is recovered through the event log: the client sees the sequence
	// hole (or the heads digest on the lights broadcast) and asks
	// TBackfill. Only inherently transient messages — media units,
	// lights tables, private direct-contact lines, presentation starts —
	// are lost outright.
	DropNewest SlowConsumerPolicy = iota
	// Disconnect tears the session down on the first overflow: its light
	// turns red and its queue is abandoned. Use when a lagging replica is
	// worse than a missing one.
	Disconnect
)

// Config configures a server.
type Config struct {
	// Network provides the listener (TCP or netsim).
	Network transport.Network
	// Addr is the listen address.
	Addr string
	// Clock drives the global clock master and the status prober
	// (defaults to the real clock).
	Clock clock.Clock
	// Monitor supplies resource availability for FCM-Arbitrate (nil
	// means always Normal).
	Monitor *resource.Monitor
	// ProbeInterval is the status-probe period (default 200ms).
	ProbeInterval time.Duration
	// ProbeTimeout marks a client red after this silence (default 3×
	// the interval).
	ProbeTimeout time.Duration
	// SendQueueCap bounds each session's outbound queue (default 256
	// messages). A session whose queue is full is a slow consumer and is
	// handled per SlowPolicy; it can never block another session's
	// delivery.
	SendQueueCap int
	// SlowPolicy is the slow-consumer policy (default DropNewest).
	SlowPolicy SlowConsumerPolicy
	// LogCap bounds each group's (and each member's) retained event log
	// (default grouplog.DefaultCap, 512 events). Under capacity pressure
	// the log compacts class-wise — events superseded by a newer
	// state-bearing restatement of their class go first, and each
	// class's latest restatement is never evicted — so a client far
	// behind usually converges from a short compacted suffix; only when
	// a needed class no longer connects does it fall back to a
	// TSnapshot. The capacity trades backfill reach against retained
	// memory per group — never correctness.
	LogCap int
	// CoalesceInterval batches the queue-restatement pushes: floor
	// transitions that shift the pending queue mark their group dirty,
	// and one logged "queue" restatement per dirty group goes out per
	// interval — N transitions in a tick cost one ring slot and one
	// fan-out, not N. Defaults to one probe tick (ProbeInterval).
	CoalesceInterval time.Duration
	// SessionTTL bounds how long a disconnected member's session token,
	// directory entry and private event log outlive their last
	// connection. Members gone longer are reaped: their token stops
	// resuming (the reconnect handshake answers a typed
	// "session_expired" error), their memberships, queue slots and any
	// held floor are released, and their member log is dropped — the
	// growth bound that keeps a million-user directory from
	// accumulating every member that ever connected. Default one hour.
	SessionTTL time.Duration
	// WALDir, when set, puts a write-ahead segment store under the
	// directory: every logged append and serving-state change is
	// journaled before the next accept, New replays the journal before
	// listening, and periodic checkpoints truncate it — a restarted
	// process resumes with the exact GSeq/CSeq cursors, tokens and floor
	// state its clients hold. Empty means in-memory only (the default).
	WALDir string
	// WALSegmentBytes is the WAL segment rotation threshold
	// (grouplog.DefaultSegmentBytes when <= 0).
	WALSegmentBytes int64
	// WALCheckpointInterval is the cadence of full-state WAL checkpoints
	// (default 30s). Checkpoints bound replay time and disk; between
	// them the journal only grows.
	WALCheckpointInterval time.Duration
	// WireJSON disables binary wire negotiation: every session stays on
	// the JSON framing regardless of what its hello asks for, and
	// retained log bytes are encoded as JSON. The escape hatch for
	// debugging with wire captures; off (binary negotiated when
	// requested) is the default.
	WireJSON bool
	// Cluster, when set, runs this server as one group-partition node of
	// a multi-process cluster: it serves only the partitions the shared
	// map assigns to it (rejecting the rest with a node_moved redirect),
	// homes only the members whose hash lands on it, replicates its
	// partitions' logged appends to the ring successor, and speaks typed
	// TForward messages with its peers. Nil is the ordinary standalone
	// server.
	Cluster *ClusterConfig
}

// Server is a running DMPS server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *group.Registry
	floorCtl *floor.Controller
	master   *clock.Master
	logs     *grouplog.Plane
	cluster  *clusterState // nil outside cluster mode
	wal      *grouplog.WAL // nil when Config.WALDir is empty
	// plane is the node's runtime tracing plane: every hop of a sampled
	// operation (dispatch, arbitrate, log append, encode, queue wait,
	// flush, replication ack) records a named span here, keyed by the
	// wire-propagated trace ID. Always non-nil; unsampled traffic never
	// touches it.
	plane *trace.Plane

	nextID atomic.Int64

	mu       sync.Mutex
	sessions map[group.MemberID]*session
	boards   map[string]*groupBoard
	// conns tracks every accepted connection from accept until its
	// handler exits, so Close severs them all — the session table alone
	// misses inter-node peer links (no session) and conns still mid-
	// handshake (session not yet installed), and an unsevered connection
	// parks its handler on Recv forever, deadlocking Close's wg.Wait.
	conns map[transport.Conn]bool
	// tokens maps session-resume tokens to members (and tokenOf the
	// reverse): a reconnecting client presents its token in THello and
	// is re-bound to the same member identity without re-joining groups.
	tokens  map[string]group.MemberID
	tokenOf map[group.MemberID]string

	// coalesce state: groups whose pending floor queue shifted since the
	// last flush, restated once per CoalesceInterval tick.
	coMu    sync.Mutex
	coDirty map[string]floor.Mode
	// restateMarked counts transitions that requested a queue
	// restatement; restateLogged counts restatements actually logged —
	// the coalescing ratio the queue-churn benchmark gates on.
	restateMarked atomic.Int64
	restateLogged atomic.Int64
	// boardOps counts board operations appended; boardEvents the
	// coalesced logged events they produced — the annotation-storm
	// ratio BenchmarkBoardStorm gates on.
	boardOps    atomic.Int64
	boardEvents atomic.Int64

	// Wire-path telemetry: payload bytes read off client connections
	// (wireIn) and handed to writers (wireOut), writer flushes and the
	// messages they carried — msgs/flush is the batching efficiency the
	// /metrics plane exports.
	wireIn      atomic.Int64
	wireOut     atomic.Int64
	wireFlushes atomic.Int64
	wireMsgsOut atomic.Int64

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// session is one connected client. All outbound traffic goes through a
// bounded queue drained by a dedicated writer goroutine, so a stalled
// client socket backs up only its own queue — never the goroutine that
// is fanning a broadcast out to the rest of the group.
type session struct {
	member group.Member
	conn   transport.Conn
	// homed marks a session admitted by this node's own handshake (the
	// member's home is here); node-scoped sessions opened by the routing
	// tier for remote-homed members are not homed, and in cluster mode
	// the lights/backpressure tables cover homed sessions only — a node
	// tracks lights for exactly the members it homes.
	homed bool
	// wireVer is the session's negotiated wire framing (0 = JSON, 1 =
	// binary, 2 = binary with the trace-context frame extension), fixed
	// by the handshake before the session is installed — read without
	// locking ever after. Everything sent to the session is encoded (or
	// transcoded, or trace-stripped) to this version; inbound frames of
	// either format are accepted regardless.
	wireVer int

	// queue carries encoded wire messages to the writer goroutine.
	queue chan queued
	// down signals the writer to exit; closed exactly once via downOnce.
	down     chan struct{}
	downOnce sync.Once
	// drops counts messages dropped on queue overflow (backpressure).
	drops atomic.Int64
	// classes is the session's event-class mask (nil means every
	// class): logged events of classes outside it are filtered before
	// they reach the queue, counted in filtered. Set at the handshake
	// (HelloBody.Classes), replaced by TSubscribe; read lock-free on
	// every fan-out.
	classes  atomic.Pointer[map[string]bool]
	filtered atomic.Int64

	mu       sync.Mutex
	lastSeen time.Time
	alive    bool
	// Lights-push dedup: the digest, light table and drop counters of
	// the last lights message this session accepted. While none of them
	// change, the probe tick skips the session entirely — no re-encode,
	// no bytes (queue depth is telemetry riding along, not a trigger).
	sentLights map[string]string
	sentHeads  map[string]map[string]int64
	sentDrops  map[string]int64
	lightsSent bool
}

// queued is one outbound queue entry: the wire bytes, plus — for
// sampled frames only — the trace ID and enqueue time that let the
// writer record the queue_wait span. The struct travels by value on the
// channel, so untraced traffic pays two zero fields and no allocation.
type queued struct {
	wire []byte
	tid  uint64
	at   int64 // enqueue time, UnixNano; 0 when untraced
}

// enqueued stamps wire bytes into a queue entry, reading the trace
// context off the frame itself (a two-byte peek for untraced frames).
func enqueued(wire []byte) queued {
	q := queued{wire: wire}
	if tid, _, fl := protocol.FrameTrace(wire); tid != 0 && fl&protocol.TraceSampled != 0 {
		q.tid = tid
		q.at = time.Now().UnixNano()
	}
	return q
}

// traceCtx is the sampled trace identity of the client request a
// logged event is caused by, threaded from the dispatch handler into
// the log-append path so the derived event's wire bytes carry the
// trace downstream (fan-out, WAL, replication). The zero value means
// untraced and costs nothing everywhere it is passed.
type traceCtx struct {
	id    uint64
	flags uint8
}

// traceOf extracts the trace context from a request message; untraced
// and unsampled messages yield the zero context.
func traceOf(msg protocol.Message) traceCtx {
	if !msg.Sampled() {
		return traceCtx{}
	}
	return traceCtx{id: msg.TraceID, flags: msg.TraceFlags}
}

// sampled reports whether the context carries a sampled trace — the
// guard in front of every clock read on the instrumented paths.
func (t traceCtx) sampled() bool { return t.id != 0 }

// stamp writes the context onto a derived message: the event keeps the
// originating trace ID, with the parent marking it downstream of the
// root request span.
func (t traceCtx) stamp(msg *protocol.Message) {
	if t.id == 0 {
		return
	}
	msg.TraceID = t.id
	msg.TraceParent = t.id
	msg.TraceFlags = t.flags
}

// wantsClass reports whether the session's event-class mask admits a
// logged event class (a nil mask admits everything).
func (s *session) wantsClass(class string) bool {
	m := s.classes.Load()
	if m == nil {
		return true
	}
	return (*m)[class]
}

// classSet adapts the shared protocol.ClassMask rule to the session's
// atomic pointer (nil pointer = admit every class).
func classSet(classes []string) *map[string]bool {
	m := protocol.ClassMask(classes)
	if m == nil {
		return nil
	}
	return &m
}

// loggable reports whether a broadcast type is a sequenced state event:
// appended to the group's event log and stamped with a GSeq, so a drop
// on any recipient's queue is repairable through TBackfill. Everything
// else (media units, lights, probes, presentation starts, private
// lines, replies) is transient and delivered best-effort.
func loggable(t protocol.Type) bool {
	switch t {
	case protocol.TFloorEvent, protocol.TSuspend, protocol.TResume,
		protocol.TChatEvent, protocol.TAnnotateEvent:
		return true
	default:
		return false
	}
}

// sendDirect encodes and writes synchronously on the connection. Only
// the handshake uses it, before the writer goroutine exists — the
// welcome must be on the wire before the session joins any fan-out.
func (s *session) sendDirect(msg protocol.Message) error {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return err
	}
	return s.conn.Send(wire)
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

func (s *session) light(now time.Time, timeout time.Duration) Light {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive || now.Sub(s.lastSeen) > timeout {
		return Red
	}
	return Green
}

// encodeFor encodes a message in the session's negotiated wire framing.
// Version-1 sessions predate the trace-context frame extension, so the
// trace fields are cleared before the encode (msg is a copy); JSON
// sessions keep them — unknown JSON fields are ignored by any decoder.
func encodeFor(sess *session, msg protocol.Message) ([]byte, error) {
	if sess.wireVer == 1 {
		msg.TraceID, msg.TraceParent, msg.TraceFlags = 0, 0, 0
	}
	if sess.wireVer >= 1 {
		return protocol.EncodeBinary(msg)
	}
	return protocol.Encode(msg)
}

// encodeCanonical produces the retained wire form shared by the group
// log, WAL, and replication stream: binary unless the node is pinned to
// JSON. Retained bytes are self-describing (DecodeAny reads either
// framing), so mixed-config clusters interoperate; sessions negotiated
// to the other framing get a transcode at fan-out via wireFor.
func (s *Server) encodeCanonical(msg protocol.Message) ([]byte, error) {
	if s.cfg.WireJSON {
		return protocol.Encode(msg)
	}
	return protocol.EncodeBinary(msg)
}

// transcodeJSON re-encodes retained binary wire bytes as a JSON frame
// for a JSON-negotiated session. On a malformed frame the original
// bytes pass through: the session surfaces a decode error rather than
// silently losing the event.
func transcodeJSON(wire []byte) []byte {
	msg, err := protocol.DecodeAny(wire)
	if err != nil {
		return wire
	}
	out, err := protocol.Encode(msg)
	if err != nil {
		return wire
	}
	return out
}

// wireFor adapts retained wire bytes to the session's negotiated
// framing. Version-2 sessions accept either form verbatim (clients
// decode both); version-1 sessions additionally get the trace-context
// extension stripped (a no-op peek unless the frame carries it); only
// the JSON-session/binary-bytes pairing pays a transcode.
func wireFor(sess *session, wire []byte) []byte {
	switch {
	case sess.wireVer >= 2:
		return wire
	case sess.wireVer == 1:
		return protocol.StripTrace(wire)
	case protocol.IsBinaryFrame(wire):
		return transcodeJSON(wire)
	default:
		return wire
	}
}

// sendMsg encodes a message and queues it for this session alone,
// reporting whether it fit (an unencodable message reports true: there
// is nothing to retry). Events shared by many recipients should be
// encoded once with encodeCanonical and fanned out via sendWire.
func (s *Server) sendMsg(sess *session, msg protocol.Message) bool {
	wire, err := encodeFor(sess, msg)
	if err != nil {
		return true
	}
	return s.sendWire(sess, wire)
}

// sendReliable encodes and queues a message for the session, blocking
// when the queue is full instead of dropping. It is for replies
// (TAck/TErr) and requester-directed events sent from the session's own
// handler goroutine while holding no locks: blocking there exerts
// backpressure on exactly the client that is slow — its own read loop
// pauses — and a reply can never be silently lost. Cross-session sends
// must use sendWire instead (blocking on someone else's queue would let
// one slow consumer stall another member's handler).
func (s *Server) sendReliable(sess *session, msg protocol.Message) {
	wire, err := encodeFor(sess, msg)
	if err != nil {
		return
	}
	select {
	case sess.queue <- enqueued(wire):
		s.unpinIfDown(sess)
	case <-sess.down:
	}
}

// sendWire hands pre-encoded wire bytes to the session's writer queue.
// It never blocks: when the queue is full the slow-consumer policy
// applies (count-and-drop, or disconnect). It reports false only for an
// overflow drop; a session that is already down returns true, since
// there is nothing left to deliver to.
func (s *Server) sendWire(sess *session, wire []byte) bool {
	select {
	case <-sess.down:
		return true
	default:
	}
	select {
	case sess.queue <- enqueued(wire):
		s.unpinIfDown(sess)
		return true
	default:
		sess.drops.Add(1)
		if s.cfg.SlowPolicy == Disconnect {
			s.disconnect(sess)
		}
		return false
	}
}

// unpinIfDown covers the enqueue/disconnect race: if the session went
// down between the down-gate check and the enqueue, the writer is gone
// and disconnect's drain may already have run, so pull one message back
// out — a dead session's queue must stay empty or its buffers would be
// pinned for the server's lifetime.
func (s *Server) unpinIfDown(sess *session) {
	select {
	case <-sess.down:
		select {
		case <-sess.queue:
		default:
		}
	default:
	}
}

// flushBatchBytes caps how many payload bytes one writer flush may
// carry. The cap bounds flush latency under a deep queue — the first
// message in a drain is never held behind more than this much data —
// and keeps the transport's packing buffer poolable.
const flushBatchBytes = 256 << 10

// writeLoop is the per-session writer: it drains the queue onto the
// connection until the session goes down or the connection fails.
// After blocking for the first message it opportunistically drains
// whatever else is already queued (up to flushBatchBytes) and hands the
// whole run to the transport as one batched write — under queue
// pressure a drain costs one syscall, not one per message. The drain
// never waits for more messages, so an idle session's flush latency is
// unchanged.
func (s *Server) writeLoop(sess *session) {
	defer s.wg.Done()
	batch := make([][]byte, 0, 64)
	var traced []queued // sampled entries of the current flush; stays nil on untraced sessions
	for {
		select {
		case q := <-sess.queue:
			batch = append(batch[:0], q.wire)
			traced = traced[:0]
			if q.tid != 0 {
				traced = append(traced, q)
			}
			size := len(q.wire)
		drain:
			for size < flushBatchBytes {
				select {
				case more := <-sess.queue:
					batch = append(batch, more.wire)
					if more.tid != 0 {
						traced = append(traced, more)
					}
					size += len(more.wire)
				default:
					break drain
				}
			}
			var t0 time.Time
			if len(traced) > 0 {
				t0 = time.Now()
			}
			if err := transport.SendAll(sess.conn, batch); err != nil {
				s.disconnect(sess)
				return
			}
			for _, q := range traced {
				at := time.Unix(0, q.at)
				s.plane.SpanDur(q.tid, q.tid, trace.StageQueueWait, at, t0.Sub(at))
				s.plane.Span(q.tid, q.tid, trace.StageFlush, t0)
			}
			s.wireOut.Add(int64(size))
			s.wireFlushes.Add(1)
			s.wireMsgsOut.Add(int64(len(batch)))
		case <-sess.down:
			return
		}
	}
}

// SessionStats is one session's backpressure snapshot.
type SessionStats struct {
	// QueueDepth is the number of queued outbound messages right now.
	QueueDepth int
	// QueueCap is the queue's capacity (Config.SendQueueCap).
	QueueCap int
	// Drops counts messages dropped on overflow since the session began.
	Drops int64
	// Filtered counts logged events the session's event-class mask kept
	// off its queue entirely — the scale-hygiene dividend of server-side
	// filtering, observable per session.
	Filtered int64
}

// SessionStats returns per-member backpressure counters for every
// connected session — the observability half of the slow-consumer
// policy, also pushed to clients on the lights broadcast.
func (s *Server) SessionStats() map[string]SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SessionStats, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = SessionStats{
			QueueDepth: len(sess.queue),
			QueueCap:   cap(sess.queue),
			Drops:      sess.drops.Load(),
			Filtered:   sess.filtered.Load(),
		}
	}
	return out
}

// New creates a server and starts listening. Call Serve (usually in a
// goroutine) to accept clients, and Close to shut down.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 200 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 3 * cfg.ProbeInterval
	}
	if cfg.SendQueueCap <= 0 {
		cfg.SendQueueCap = 256
	}
	if cfg.CoalesceInterval <= 0 {
		cfg.CoalesceInterval = cfg.ProbeInterval
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = time.Hour
	}
	if cfg.WALCheckpointInterval <= 0 {
		cfg.WALCheckpointInterval = 30 * time.Second
	}
	var cl *clusterState
	if cfg.Cluster != nil {
		var err error
		if cl, err = newClusterState(*cfg.Cluster, cfg.Network, cfg.LogCap); err != nil {
			return nil, err
		}
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	registry := group.NewRegistry()
	s := &Server{
		cfg:      cfg,
		listener: l,
		registry: registry,
		floorCtl: floor.NewController(registry, cfg.Monitor),
		master:   clock.NewMaster(cfg.Clock),
		logs:     grouplog.NewPlane(cfg.LogCap),
		sessions: make(map[group.MemberID]*session),
		conns:    make(map[transport.Conn]bool),
		boards:   make(map[string]*groupBoard),
		tokens:   make(map[string]group.MemberID),
		tokenOf:  make(map[group.MemberID]string),
		cluster:  cl,
		plane:    trace.NewPlane(l.Addr(), trace.ServerStages, 0),
		closed:   make(chan struct{}),
	}
	if cl != nil {
		// Replication round trips become repl_ack spans: the ack table
		// hands back each traced forward's identity and RTT on full ack.
		cl.acks.OnTraceAck(func(tid uint64, sentAt time.Time, rtt time.Duration) {
			s.plane.SpanDur(tid, tid, trace.StageReplAck, sentAt, rtt)
		})
	}
	if cfg.WALDir != "" {
		w, err := grouplog.OpenWAL(cfg.WALDir, cfg.WALSegmentBytes)
		if err != nil {
			_ = l.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		// Replay before the WAL hooks arm (s.wal is still nil), so the
		// installs do not re-journal what the journal just said.
		if err := s.replayWAL(w); err != nil {
			_ = l.Close()
			_ = w.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.wal = w
	}
	s.wg.Add(2)
	go s.probeLoop()
	go s.coalesceLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Registry exposes the group administration (for tests and tools).
func (s *Server) Registry() *group.Registry { return s.registry }

// FloorController exposes the floor control state (for tests and tools).
func (s *Server) FloorController() *floor.Controller { return s.floorCtl }

// Master exposes the global clock master.
func (s *Server) Master() *clock.Master { return s.master }

// TracePlane exposes the node's runtime tracing plane (for tests and
// the metrics registration path).
func (s *Server) TracePlane() *trace.Plane { return s.plane }

// Serve accepts clients until Close. It returns nil after a clean Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		s.mu.Lock()
		select {
		case <-s.closed:
			// Close already swept the conn table; a late accept must not
			// slip past it into a handler nobody can unblock.
			s.mu.Unlock()
			_ = conn.Close()
			continue
		default:
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Start runs Serve on a goroutine.
func (s *Server) Start() { go func() { _ = s.Serve() }() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		_ = s.listener.Close()
		s.mu.Lock()
		for _, sess := range s.sessions {
			_ = sess.conn.Close()
		}
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		if s.cluster != nil {
			s.cluster.pool.Close()
		}
	})
	s.wg.Wait()
	s.plane.Close()
	if s.wal != nil {
		// After the goroutines drain: nothing appends anymore, so the
		// final flush+fsync captures everything (Close is idempotent).
		_ = s.wal.Close()
	}
}

// handle runs one client session: handshake, then the message loop. A
// connection whose first message is a TForward is an inter-node peer
// link and runs the forward loop instead.
func (s *Server) handle(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess, peer, err := s.handshake(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	if sess == nil {
		s.peerLoop(conn, peer)
		return
	}
	for {
		wire, err := conn.Recv()
		if err != nil {
			s.disconnect(sess)
			return
		}
		s.wireIn.Add(int64(len(wire)))
		msg, err := protocol.DecodeAny(wire)
		if err != nil {
			s.replyErr(sess, 0, "decode", err)
			continue
		}
		sess.touch(s.cfg.Clock.Now())
		if msg.Type == protocol.TBye {
			s.disconnect(sess)
			return
		}
		var t0 time.Time
		sampled := msg.Sampled()
		if sampled {
			t0 = time.Now()
		}
		s.dispatch(sess, msg)
		if sampled {
			s.plane.Span(msg.TraceID, msg.TraceParent, trace.StageDispatch, t0)
		}
	}
}

// testResumeRaceHook, when set by a test, runs between the resume
// handshake's first token check and the install-time re-check —
// the window a concurrent Reap can revoke the token in.
var testResumeRaceHook func()

// rejectExpired answers a resume attempt whose token no longer resolves
// with the typed session_expired error before the connection closes, so
// the client can tell an expired session apart from a network failure —
// on every path, including the reap-races-the-resume window.
func rejectExpired(conn transport.Conn, seq int64) {
	reject := protocol.MustNew(protocol.TErr, protocol.ErrBody{
		Code:   "session_expired",
		Detail: "unknown or expired session token; reconnect with a fresh hello",
	})
	reject.Seq = seq
	if wire, err := protocol.Encode(reject); err == nil {
		_ = conn.Send(wire)
	}
}

// handshake admits a client: the first message must be THello (or, on a
// cluster node, a TNodeHello binding a remote-homed member, or a
// TForward opening a peer link — returned with a nil session). A hello
// carrying a session token resumes the member it was issued to — the
// new connection displaces any stale session still in the table, and
// the client converges through TBackfill instead of re-joining groups.
func (s *Server) handshake(conn transport.Conn) (*session, protocol.Message, error) {
	wire, err := conn.Recv()
	if err != nil {
		return nil, protocol.Message{}, err
	}
	msg, err := protocol.Decode(wire)
	if err != nil {
		return nil, protocol.Message{}, fmt.Errorf("server: handshake: %w (%w)", err, transport.ErrClosed)
	}
	homed := true
	var member group.Member
	var hello protocol.HelloBody
	fresh := true
	switch msg.Type {
	case protocol.THello:
		if err := msg.Into(&hello); err != nil {
			return nil, protocol.Message{}, err
		}
	case protocol.TForward:
		if s.cluster == nil {
			return nil, protocol.Message{}, fmt.Errorf("server: handshake: forward outside cluster mode (%w)", transport.ErrClosed)
		}
		return nil, msg, nil
	case protocol.TNodeHello:
		if s.cluster == nil {
			return nil, protocol.Message{}, fmt.Errorf("server: handshake: node hello outside cluster mode (%w)", transport.ErrClosed)
		}
		var nh protocol.NodeHelloBody
		if err := msg.Into(&nh); err != nil {
			return nil, protocol.Message{}, err
		}
		if nh.MemberID == "" {
			return nil, protocol.Message{}, fmt.Errorf("server: handshake: node hello without member (%w)", transport.ErrClosed)
		}
		member = memberFromInfo(protocol.NodeMemberInfo{ID: nh.MemberID, Name: nh.Name, Role: nh.Role, Priority: nh.Priority})
		if err := s.registry.EnsureMember(member); err != nil {
			return nil, protocol.Message{}, err
		}
		hello.Classes = nh.Classes
		hello.WireVersion = nh.WireVersion
		homed = false
		fresh = false
	default:
		return nil, protocol.Message{}, fmt.Errorf("server: handshake: got %v (%w)", msg.Type, transport.ErrClosed)
	}

	if homed {
		fresh = hello.Token == ""
		if fresh {
			role := group.Participant
			if strings.EqualFold(hello.Role, "chair") {
				role = group.Chair
			}
			// A cluster node homes only the members whose hash lands on
			// it: a directly-dialing client whose home is elsewhere gets
			// the typed redirect and follows it.
			if s.cluster != nil {
				key := cluster.HomeKey(group.SanitizeName(hello.Name))
				if !s.homesMember(group.MemberID(key)) {
					reject := protocol.MustNew(protocol.TErr, protocol.ErrBody{
						Code: protocol.CodeNodeMoved, Detail: s.ownerAddr(key),
					})
					reject.Seq = msg.Seq
					if w, encErr := protocol.Encode(reject); encErr == nil {
						_ = conn.Send(w)
					}
					return nil, protocol.Message{}, fmt.Errorf("server: handshake: member homed elsewhere (%w)", transport.ErrClosed)
				}
			}
			// Admission needs no server-wide lock: the ID counter is atomic
			// and the registry guards itself.
			id := group.MemberID(fmt.Sprintf("%s#%d", group.SanitizeName(hello.Name), s.nextID.Add(1)))
			member = group.Member{ID: id, Name: hello.Name, Role: role, Priority: hello.Priority}
			if err := s.registry.Register(member); err != nil {
				return nil, protocol.Message{}, err
			}
		} else {
			s.mu.Lock()
			id, ok := s.tokens[hello.Token]
			s.mu.Unlock()
			if !ok {
				// Not minted here. In cluster mode the token may belong to
				// a member whose home node died: the replica store holds
				// their replicated home state, and when the home really is
				// unreachable this node adopts them — a resume survives
				// home-node death instead of expiring the session.
				var redirect string
				if id, redirect, ok = s.adoptResume(hello.Token); !ok {
					if redirect != "" {
						reject := protocol.MustNew(protocol.TErr, protocol.ErrBody{
							Code: protocol.CodeNodeMoved, Detail: redirect,
						})
						reject.Seq = msg.Seq
						if w, encErr := protocol.Encode(reject); encErr == nil {
							_ = conn.Send(w)
						}
						return nil, protocol.Message{}, fmt.Errorf("server: handshake: member homed elsewhere (%w)", transport.ErrClosed)
					}
					// The token was reaped (SessionTTL) or never issued.
					rejectExpired(conn, msg.Seq)
					return nil, protocol.Message{}, fmt.Errorf("server: handshake: unknown session token (%w)", transport.ErrClosed)
				}
			}
			if member, err = s.registry.Member(id); err != nil {
				return nil, protocol.Message{}, err
			}
			if testResumeRaceHook != nil {
				// Test seam for the reap-races-the-resume window: the
				// token resolved above, and whatever runs here (a reap)
				// must still surface as the typed session_expired below.
				testResumeRaceHook()
			}
		}
	}
	token := ""
	if homed {
		token = s.issueToken(member.ID)
		if fresh {
			// A fresh admission mints this node's claim on the member:
			// journal the home (directory row + token) and replicate it to
			// the ring successors, so the resume outlives this process.
			s.walMemberHome(member, token)
			s.replicateMemberHome(member, token)
		}
	}

	// The hello's wire_version is a request; the server grants it only
	// when not pinned to JSON, and never a higher version than asked —
	// capped at 2, the highest this server speaks (binary frames with
	// the trace-context extension). A v1 peer keeps the layout it knows:
	// frames sent to it never carry the extension. Both sides switch
	// framing strictly after the welcome: the whole handshake is JSON,
	// so a v0 peer never sees a frame it cannot read.
	wireVer := 0
	if !s.cfg.WireJSON && hello.WireVersion >= 1 {
		wireVer = hello.WireVersion
		if wireVer > 2 {
			wireVer = 2
		}
	}
	sess := &session{
		member:   member,
		conn:     conn,
		homed:    homed,
		wireVer:  wireVer,
		queue:    make(chan queued, s.cfg.SendQueueCap),
		down:     make(chan struct{}),
		lastSeen: s.cfg.Clock.Now(),
		alive:    true,
	}
	sess.classes.Store(classSet(hello.Classes))
	// The welcome must be the first message the client sees, so send it
	// synchronously before the session becomes visible to broadcasts and
	// probes (the writer starts only after registration).
	welcome := protocol.MustNew(protocol.TWelcome, protocol.WelcomeBody{
		MemberID:        string(member.ID),
		ServerTimeNanos: protocol.Nanos(s.master.GlobalNow()),
		Token:           token,
		WireVersion:     wireVer,
	})
	welcome.Seq = msg.Seq
	s.mu.Lock()
	if homed && !fresh {
		// Re-check the token under the same lock that installs the
		// session: Reap revokes a member's token and collects their
		// stale session in one critical section, so a token still
		// present here proves the reaper has not claimed this member —
		// and once our fresh session is in the table, its recent
		// lastSeen keeps the member alive. A token gone means the
		// member was reaped mid-handshake: back out, including the
		// token issueToken just re-minted (the member is gone, so that
		// entry could never be cleaned up again), and reject with the
		// same typed session_expired the up-front check answers — the
		// race must not masquerade as a network failure to the client,
		// which is why the re-check runs before the welcome is written.
		if id, ok := s.tokens[hello.Token]; !ok || id != member.ID {
			if tok, ok := s.tokenOf[member.ID]; ok {
				delete(s.tokens, tok)
				delete(s.tokenOf, member.ID)
			}
			s.mu.Unlock()
			rejectExpired(conn, msg.Seq)
			_ = conn.Close()
			return nil, protocol.Message{}, fmt.Errorf("server: handshake: session reaped during resume (%w)", transport.ErrClosed)
		}
	}
	old := s.sessions[member.ID]
	s.sessions[member.ID] = sess
	s.mu.Unlock()
	if old != nil {
		// A resumed member displaces their previous session (its writer
		// may still be parked on a dead connection): the regular
		// disconnect path tears it down — its table entry is already
		// replaced, so the member's light reflects the new session.
		s.disconnect(old)
	}
	// The session is in the table, but its writer has not started: the
	// direct welcome send below is still the first message on the wire —
	// broadcasts racing this window only queue.
	if err := sess.sendDirect(welcome); err != nil {
		s.mu.Lock()
		if s.sessions[member.ID] == sess {
			delete(s.sessions, member.ID)
		}
		s.mu.Unlock()
		s.disconnect(sess)
		if fresh && homed {
			s.registry.Unregister(member.ID)
		}
		return nil, protocol.Message{}, err
	}
	s.wg.Add(1)
	go s.writeLoop(sess)
	return sess, protocol.Message{}, nil
}

// issueToken returns the member's session-resume token, minting one on
// first use. Tokens are random and live as long as the member directory
// entry they resume: a member gone past Config.SessionTTL is reaped and
// their token stops resolving.
func (s *Server) issueToken(id group.MemberID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tok, ok := s.tokenOf[id]; ok {
		return tok
	}
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		// No entropy, no resumable session; the client simply cannot
		// reconnect with a token it never got.
		return ""
	}
	tok := hex.EncodeToString(buf)
	s.tokens[tok] = id
	s.tokenOf[id] = tok
	return tok
}

// disconnect marks the session dead (light turns red; membership and
// floor state persist so the teacher can inspect the red light, as in
// Figure 3(c)). The writer goroutine is told to exit and the connection
// closed, which also unblocks a writer stalled mid-Send.
func (s *Server) disconnect(sess *session) {
	sess.mu.Lock()
	wasAlive := sess.alive
	sess.alive = false
	sess.mu.Unlock()
	sess.downOnce.Do(func() { close(sess.down) })
	_ = sess.conn.Close()
	// Drop the abandoned backlog so a dead session pins no buffers: the
	// session itself stays in the table (the red light persists, Figure
	// 3(c)) but its writer is gone and sendWire's down-gate stops new
	// enqueues, so one drain frees everything for good.
	for {
		select {
		case <-sess.queue:
			continue
		default:
		}
		break
	}
	select {
	case <-s.closed:
		// No lights rebroadcast during server shutdown.
		return
	default:
	}
	if wasAlive {
		// Rebroadcast the lights off this call stack: disconnect can be
		// reached from inside sendWire (Disconnect policy), and a
		// synchronous broadcast there would recurse once per
		// simultaneously-overflowing session — an O(sessions²) send
		// storm. One goroutine per transition is bounded by the wasAlive
		// guard and joins the server's WaitGroup so Close waits for it.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.broadcastLights()
		}()
	}
}

// groupBoard pairs the authoritative board with a mutex that serializes
// append+broadcast, so every connection observes operations in sequence
// order (concurrent handler goroutines would otherwise interleave a later
// sequence number ahead of an earlier one). pend is the group's pending
// coalesced board batch: contiguous same-author operations accumulate
// here and go out as one logged event per CoalesceInterval tick.
type groupBoard struct {
	mu    sync.Mutex
	board *whiteboard.Board
	// pend is the open coalesced batch (one author, one wire type);
	// pendType its envelope type and lastLog when the group last logged
	// a board event — the leading-edge clock that lets an idle board
	// broadcast inline.
	pend     []protocol.SequencedBody
	pendType protocol.Type
	lastLog  time.Time
}

// board returns (creating) the group's authoritative board.
func (s *Server) board(groupID string) *groupBoard {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.boards[groupID]
	if !ok {
		b = &groupBoard{board: whiteboard.NewBoard()}
		s.boards[groupID] = b
	}
	return b
}

func (s *Server) replyAck(sess *session, seq int64, body any) {
	msg := protocol.MustNew(protocol.TAck, body)
	msg.Seq = seq
	s.sendReliable(sess, msg)
}

func (s *Server) replyErr(sess *session, seq int64, code string, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	msg := protocol.MustNew(protocol.TErr, protocol.ErrBody{Code: code, Detail: detail})
	msg.Seq = seq
	s.sendReliable(sess, msg)
}

// session returns the live session for a member, if connected.
func (s *Server) session(id group.MemberID) (*session, bool) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	return sess, ok
}

// sendTo delivers a message to one member if connected.
func (s *Server) sendTo(id group.MemberID, msg protocol.Message) {
	if sess, ok := s.session(id); ok {
		s.sendMsg(sess, msg)
	}
}

// groupTargets snapshots the connected sessions of a group's members
// under a single lock acquisition.
func (s *Server) groupTargets(groupID string) []*session {
	// IDs, not full directory entries: the fan-out only keys the session
	// table, and the ID snapshot is shared (allocation-free) between
	// membership changes.
	members, err := s.registry.GroupMemberIDs(groupID)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	targets := make([]*session, 0, len(members))
	for _, id := range members {
		if sess, ok := s.sessions[id]; ok {
			targets = append(targets, sess)
		}
	}
	s.mu.Unlock()
	return targets
}

// broadcastGroup delivers a transient (unlogged) message to every
// connected member of a group: the message is encoded at most once per
// wire framing — lazily, so a uniform group pays exactly one encode —
// and the wire bytes are queued to each recipient's writer. Drops are
// final — state events must go through logBroadcast instead.
func (s *Server) broadcastGroup(groupID string, msg protocol.Message) {
	var jsonWire, binWire []byte
	for _, sess := range s.groupTargets(groupID) {
		var wire []byte
		if sess.wireVer >= 1 {
			if binWire == nil {
				w, err := protocol.EncodeBinary(msg)
				if err != nil {
					continue
				}
				binWire = w
			}
			wire = binWire
		} else {
			if jsonWire == nil {
				w, err := protocol.Encode(msg)
				if err != nil {
					continue
				}
				jsonWire = w
			}
			wire = jsonWire
		}
		s.sendWire(sess, wire)
	}
}

// stampLogged writes the log-plane envelope fields onto a message: the
// group the log is keyed by (clients key their cursors by Message.Group,
// so a mismatch would desynchronize every member's cursor into a
// permanent backfill loop), the log-wide GSeq, and the class-sequencing
// triple that per-recipient filtering admits against.
func stampLogged(msg *protocol.Message, groupID, class string, state bool, gseq, cseq int64) {
	msg.Group = groupID
	msg.GSeq = gseq
	msg.Class = class
	msg.CSeq = cseq
	msg.State = state
}

// fanOutLogged queues pre-encoded logged-event bytes to every target
// session whose event-class mask admits the class; masked sessions get
// nothing — not even a marker — which is exactly why logged events are
// sequenced per class. When the retained bytes are binary and the group
// mixes in JSON-negotiated sessions, the JSON form is produced once and
// shared — a uniform group still pays exactly one encode per event.
func (s *Server) fanOutLogged(targets []*session, class string, wire []byte) {
	isBin := protocol.IsBinaryFrame(wire)
	hasTrace := isBin && protocol.FrameHasTrace(wire)
	var jsonWire, v1Wire []byte
	for _, sess := range targets {
		if !sess.wantsClass(class) {
			sess.filtered.Add(1)
			continue
		}
		w := wire
		if isBin && sess.wireVer == 0 {
			if jsonWire == nil {
				jsonWire = transcodeJSON(wire)
			}
			w = jsonWire
		} else if hasTrace && sess.wireVer == 1 {
			// v1 peers predate the trace extension: strip it once and
			// share, exactly like the JSON transcode above.
			if v1Wire == nil {
				v1Wire = protocol.StripTrace(wire)
			}
			w = v1Wire
		}
		s.sendWire(sess, w)
	}
}

// logBroadcast delivers a state event to a group through the event-log
// plane: the append assigns the event its sequence numbers, stamps them
// into the wire bytes (one encode per broadcast, group size
// notwithstanding) and retains them for backfill; the same bytes are
// fanned out to every connected, subscribed member while the log's lock
// is held, so fan-out order equals log order and clients can apply
// strictly in sequence. A recipient whose queue drops the event needs
// no server-side bookkeeping: the hole in its per-class CSeq stream —
// or the heads digest riding the lights broadcast, for drops with no
// later event behind them — makes the client ask TBackfill.
func (s *Server) logBroadcast(groupID string, msg protocol.Message) {
	class, ok := protocol.ClassOf(msg.Type)
	if !ok {
		// Not a logged state type; deliver transiently rather than
		// corrupt the class sequencing.
		s.broadcastGroup(groupID, msg)
		return
	}
	tc := traceOf(msg)
	targets := s.groupTargets(groupID)
	var gseqAt, cseqAt int64
	var a0 time.Time
	if tc.sampled() {
		a0 = time.Now()
	}
	_, _ = s.logs.Get(groupID).Append(class, false, func(gseq, cseq int64) ([]byte, error) {
		gseqAt, cseqAt = gseq, cseq
		stampLogged(&msg, groupID, class, false, gseq, cseq)
		var e0 time.Time
		if tc.sampled() {
			e0 = time.Now()
		}
		wire, err := s.encodeCanonical(msg)
		if tc.sampled() {
			s.plane.Span(tc.id, tc.id, trace.StageEncode, e0)
		}
		return wire, err
	}, func(wire []byte) {
		s.fanOutLogged(targets, class, wire)
		s.walEvent(groupID, gseqAt, cseqAt, class, false, wire)
		if s.cluster != nil {
			s.replicateLogged(groupID, class, wire)
		}
	})
	if tc.sampled() {
		s.plane.Span(tc.id, tc.id, trace.StageLogAppend, a0)
	}
}

// logFloorEvent is logBroadcast for floor events, with two extra
// guarantees. First, Mode, Holder and the queue shape are re-read from
// the authoritative floor state inside the log lock, not taken from the
// state snapshot the caller computed earlier: handlers run
// concurrently, so two transitions can append in the opposite order of
// their state mutations — a "released" computed before a concurrent
// grant could otherwise become the log's last word and clobber every
// client's caches with values the server has already moved past.
// Re-reading at append time makes whichever entry lands last carry the
// current state (which is also what lets these events be marked
// state-bearing: compaction keeps only the latest one, and clients may
// jump a hole onto it). Second, queue slots stay private: the canonical
// logged bytes carry only the queue length, and a member who owns a
// slot gets a personalized copy — same sequence numbers, plus their own
// QueuePosition. Nobody ever receives another member's position, live
// or via backfill. Direct Contact grants are exempt from the refresh:
// they run concurrently with the prevailing mode, name their own Mode,
// and deliberately carry no group-floor claim.
func (s *Server) logFloorEvent(groupID string, body protocol.FloorEventBody, tc traceCtx) {
	targets := s.groupTargets(groupID)
	refresh := !(body.Event == "granted" && body.Mode == floor.DirectContact.String())
	var queue []group.MemberID
	var gseqAt, cseqAt int64
	var a0 time.Time
	if tc.sampled() {
		a0 = time.Now()
	}
	_, _ = s.logs.Get(groupID).Append(protocol.ClassFloor, refresh, func(gseq, cseq int64) ([]byte, error) {
		gseqAt, cseqAt = gseq, cseq
		if refresh {
			mode, holder, q, _, _ := s.floorCtl.StateSnapshot(groupID)
			body.Mode = mode.String()
			body.Holder = string(holder)
			queue = q
			body.QueueLen = len(q)
		}
		body.QueuePosition = 0 // canonical form: slots are per-recipient
		msg := protocol.MustNew(protocol.TFloorEvent, body)
		stampLogged(&msg, groupID, protocol.ClassFloor, refresh, gseq, cseq)
		tc.stamp(&msg)
		var e0 time.Time
		if tc.sampled() {
			e0 = time.Now()
		}
		wire, err := s.encodeCanonical(msg)
		if tc.sampled() {
			s.plane.Span(tc.id, tc.id, trace.StageEncode, e0)
		}
		return wire, err
	}, func(wire []byte) {
		isBin := protocol.IsBinaryFrame(wire)
		hasTrace := isBin && protocol.FrameHasTrace(wire)
		var jsonWire, v1Wire []byte
		for _, sess := range targets {
			if !sess.wantsClass(protocol.ClassFloor) {
				sess.filtered.Add(1)
				continue
			}
			var w []byte
			if pos := queueSlotFor(body, queue, string(sess.member.ID)); pos > 0 {
				// Personalized copies are per-recipient by nature, so they
				// encode straight into the session's negotiated framing.
				personal := body
				personal.QueuePosition = pos
				pmsg := protocol.MustNew(protocol.TFloorEvent, personal)
				stampLogged(&pmsg, groupID, protocol.ClassFloor, refresh, gseqAt, cseqAt)
				tc.stamp(&pmsg)
				if pw, err := encodeFor(sess, pmsg); err == nil {
					w = pw
				}
			}
			if w == nil {
				w = wire
				if isBin && sess.wireVer == 0 {
					if jsonWire == nil {
						jsonWire = transcodeJSON(wire)
					}
					w = jsonWire
				} else if hasTrace && sess.wireVer == 1 {
					if v1Wire == nil {
						v1Wire = protocol.StripTrace(wire)
					}
					w = v1Wire
				}
			}
			s.sendWire(sess, w)
		}
		// The canonical (redacted) bytes journal and replicate; the
		// queue's member identities travel in the floor blob the WAL
		// record and replicateLogged attach alongside.
		s.walEvent(groupID, gseqAt, cseqAt, protocol.ClassFloor, refresh, wire)
		s.walFloor(groupID)
		if s.cluster != nil {
			s.replicateLogged(groupID, protocol.ClassFloor, wire)
		}
	})
	if tc.sampled() {
		s.plane.Span(tc.id, tc.id, trace.StageLogAppend, a0)
	}
}

// queueSlotFor returns the recipient's own 1-based slot when this floor
// event should carry it: queue restatements tell every queued member
// their slot, and queued/approved/queue_position events tell their
// subject. Everyone else gets 0 — the redacted canonical form.
func queueSlotFor(body protocol.FloorEventBody, queue []group.MemberID, recipient string) int {
	switch body.Event {
	case "queue":
	case "queued", "approved", "queue_position":
		if body.Member != recipient {
			return 0
		}
	default:
		return 0
	}
	for i, m := range queue {
		if string(m) == recipient {
			return i + 1
		}
	}
	return 0
}

// logSuspend broadcasts a Media-Suspend/Resume transition as a
// state-bearing suspend-class event: the whole suspended set is re-read
// from the controller inside the log lock and rides the notice, so any
// single suspend event fully restates the group's suspension state — a
// recipient that missed earlier transitions reconciles from whichever
// notice it sees next, and compaction can retain just the latest one.
func (s *Server) logSuspend(groupID string, typ protocol.Type, member string, level resource.Level, tc traceCtx) {
	targets := s.groupTargets(groupID)
	var gseqAt, cseqAt int64
	var a0 time.Time
	if tc.sampled() {
		a0 = time.Now()
	}
	_, _ = s.logs.Get(groupID).Append(protocol.ClassSuspend, true, func(gseq, cseq int64) ([]byte, error) {
		gseqAt, cseqAt = gseq, cseq
		body := protocol.SuspendBody{Member: member, Level: level.String()}
		body.Suspended = []string{}
		for _, m := range s.floorCtl.Suspended(groupID) {
			body.Suspended = append(body.Suspended, string(m))
		}
		msg := protocol.MustNew(typ, body)
		stampLogged(&msg, groupID, protocol.ClassSuspend, true, gseq, cseq)
		tc.stamp(&msg)
		var e0 time.Time
		if tc.sampled() {
			e0 = time.Now()
		}
		wire, err := s.encodeCanonical(msg)
		if tc.sampled() {
			s.plane.Span(tc.id, tc.id, trace.StageEncode, e0)
		}
		return wire, err
	}, func(wire []byte) {
		s.fanOutLogged(targets, protocol.ClassSuspend, wire)
		s.walEvent(groupID, gseqAt, cseqAt, protocol.ClassSuspend, true, wire)
		s.walFloor(groupID)
		if s.cluster != nil {
			s.replicateLogged(groupID, protocol.ClassSuspend, wire)
		}
	})
	if tc.sampled() {
		s.plane.Span(tc.id, tc.id, trace.StageLogAppend, a0)
	}
}

// logSendTo delivers a member-directed state event (an invitation)
// through the member's private event log, so it enjoys the same
// drop-repair as group state: logged, stamped, and backfillable.
func (s *Server) logSendTo(id group.MemberID, msg protocol.Message) {
	class, ok := protocol.ClassOf(msg.Type)
	if !ok {
		s.sendTo(id, msg)
		return
	}
	key := grouplog.MemberKey(string(id))
	tc := traceOf(msg)
	var gseqAt, cseqAt int64
	var a0 time.Time
	if tc.sampled() {
		a0 = time.Now()
	}
	defer func() {
		if tc.sampled() {
			s.plane.Span(tc.id, tc.id, trace.StageLogAppend, a0)
		}
	}()
	_, _ = s.logs.Get(key).Append(class, false, func(gseq, cseq int64) ([]byte, error) {
		gseqAt, cseqAt = gseq, cseq
		msg.GSeq = gseq
		msg.Class = class
		msg.CSeq = cseq
		return s.encodeCanonical(msg)
	}, func(wire []byte) {
		// Member logs are durable like group logs: journaled, and
		// replicated to the R-1 successors — an invitation survives the
		// home node's death alongside the member's resume token.
		s.walEvent(key, gseqAt, cseqAt, class, false, wire)
		if s.cluster != nil {
			s.replicateLogged(key, class, wire)
		}
		sess, ok := s.session(id)
		if !ok {
			return
		}
		if !sess.wantsClass(class) {
			sess.filtered.Add(1)
			return
		}
		s.sendWire(sess, wireFor(sess, wire))
	})
}

// Broadcast delivers a server-originated message to every connected
// member of a group — announcements, and the fan-out benchmarks. State
// event types go through the log plane (append + stamp on the hot
// path); transient types fan out unlogged.
func (s *Server) Broadcast(groupID string, msg protocol.Message) {
	if loggable(msg.Type) {
		s.logBroadcast(groupID, msg)
		return
	}
	s.broadcastGroup(groupID, msg)
}
