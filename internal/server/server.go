// Package server implements the DMPS server: the centralized group
// administration and floor control of the paper ("the floor control model
// is managed by group administration of the DMPS server; all the users'
// floor control request inputs are sent to the server"), the global clock
// master, per-mode message routing, the sequenced whiteboard/message
// window, and the connection-status monitor behind the Figure-3
// red/green lights.
//
// Delivery runs on an asynchronous broadcast plane: every session owns a
// bounded outbound queue drained by its own writer goroutine, and a
// group broadcast encodes the message exactly once, handing the same
// wire bytes to each recipient's queue. Handler goroutines therefore
// never block on a peer's socket — a client that stops reading backs up
// only its own queue, where the slow-consumer policy (count-and-drop by
// default, optionally disconnect) applies and the per-session
// backpressure counters (queue depth, drops) surface through
// Server.SessionStats and the lights broadcast.
package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/clock"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// Light is a connection-status light (paper Figure 3).
type Light string

const (
	// Green: the client is connected and answering probes.
	Green Light = "green"
	// Red: the client has disconnected or stopped answering.
	Red Light = "red"
)

// SlowConsumerPolicy selects what happens when a session's bounded
// outbound queue overflows — i.e. the client reads slower than the
// server produces for it.
type SlowConsumerPolicy int

const (
	// DropNewest (the default) drops the message that does not fit and
	// counts it in the session's drop counter; nobody else is affected.
	// State-carrying traffic heals afterwards: replies never drop (they
	// block the requester's own handler instead), floor/board/suspend
	// state is re-pushed by the probe-tick resync, and pending
	// invitations are re-sent. Only inherently transient messages —
	// media units, lights tables, private direct-contact lines,
	// presentation starts — are lost outright.
	DropNewest SlowConsumerPolicy = iota
	// Disconnect tears the session down on the first overflow: its light
	// turns red and its queue is abandoned. Use when a lagging replica is
	// worse than a missing one.
	Disconnect
)

// Config configures a server.
type Config struct {
	// Network provides the listener (TCP or netsim).
	Network transport.Network
	// Addr is the listen address.
	Addr string
	// Clock drives the global clock master and the status prober
	// (defaults to the real clock).
	Clock clock.Clock
	// Monitor supplies resource availability for FCM-Arbitrate (nil
	// means always Normal).
	Monitor *resource.Monitor
	// ProbeInterval is the status-probe period (default 200ms).
	ProbeInterval time.Duration
	// ProbeTimeout marks a client red after this silence (default 3×
	// the interval).
	ProbeTimeout time.Duration
	// SendQueueCap bounds each session's outbound queue (default 256
	// messages). A session whose queue is full is a slow consumer and is
	// handled per SlowPolicy; it can never block another session's
	// delivery.
	SendQueueCap int
	// SlowPolicy is the slow-consumer policy (default DropNewest).
	SlowPolicy SlowConsumerPolicy
}

// Server is a running DMPS server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *group.Registry
	floorCtl *floor.Controller
	master   *clock.Master

	nextID atomic.Int64

	mu       sync.Mutex
	sessions map[group.MemberID]*session
	boards   map[string]*groupBoard

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// session is one connected client. All outbound traffic goes through a
// bounded queue drained by a dedicated writer goroutine, so a stalled
// client socket backs up only its own queue — never the goroutine that
// is fanning a broadcast out to the rest of the group.
type session struct {
	member group.Member
	conn   transport.Conn

	// queue carries encoded wire messages to the writer goroutine.
	queue chan []byte
	// down signals the writer to exit; closed exactly once via downOnce.
	down     chan struct{}
	downOnce sync.Once
	// drops counts messages dropped on queue overflow (backpressure).
	drops atomic.Int64

	mu       sync.Mutex
	lastSeen time.Time
	alive    bool
	// resync names groups whose state-carrying events were dropped on
	// this session's full queue, with the classes of state to re-push;
	// the probe loop repeats the push until it fits. Without this, a
	// dropped grant would leave a token group wedged behind a holder
	// that never learned it holds, and a dropped tail-of-burst board op
	// would leave a quiet replica stale with no gap event to trigger
	// replay.
	resync map[string]resyncClass
	// inviteResync is set when a TInviteEvent was dropped; the probe
	// loop re-pushes the member's pending invitations.
	inviteResync bool
}

// resyncClass is a bitmask of per-group state classes needing re-push.
type resyncClass uint8

const (
	resyncFloor resyncClass = 1 << iota
	resyncBoard
	resyncSuspend
)

// resyncClassOf maps a dropped message's type to the state class that
// can repair it (0 for inherently transient types).
func resyncClassOf(t protocol.Type) resyncClass {
	switch t {
	case protocol.TFloorEvent:
		return resyncFloor
	case protocol.TChatEvent, protocol.TAnnotateEvent:
		return resyncBoard
	case protocol.TSuspend, protocol.TResume:
		return resyncSuspend
	default:
		return 0
	}
}

// markResync schedules a group-state re-push for the given classes.
func (s *session) markResync(groupID string, class resyncClass) {
	if class == 0 {
		return
	}
	s.mu.Lock()
	if s.resync == nil {
		s.resync = make(map[string]resyncClass)
	}
	s.resync[groupID] |= class
	s.mu.Unlock()
}

// takeResync drains the pending resync set.
func (s *session) takeResync() map[string]resyncClass {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.resync
	s.resync = nil
	return out
}

// markInviteResync / takeInviteResync do the same for invitations.
func (s *session) markInviteResync() {
	s.mu.Lock()
	s.inviteResync = true
	s.mu.Unlock()
}

func (s *session) takeInviteResync() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.inviteResync
	s.inviteResync = false
	return was
}

// sendDirect encodes and writes synchronously on the connection. Only
// the handshake uses it, before the writer goroutine exists — the
// welcome must be on the wire before the session joins any fan-out.
func (s *session) sendDirect(msg protocol.Message) error {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return err
	}
	return s.conn.Send(wire)
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

func (s *session) light(now time.Time, timeout time.Duration) Light {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive || now.Sub(s.lastSeen) > timeout {
		return Red
	}
	return Green
}

// sendMsg encodes a message and queues it for this session alone,
// reporting whether it fit (an unencodable message reports true: there
// is nothing to retry). Events shared by many recipients should be
// encoded once with protocol.Encode and fanned out via sendWire.
func (s *Server) sendMsg(sess *session, msg protocol.Message) bool {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return true
	}
	return s.sendWire(sess, wire)
}

// sendReliable encodes and queues a message for the session, blocking
// when the queue is full instead of dropping. It is for replies
// (TAck/TErr) and requester-directed events sent from the session's own
// handler goroutine while holding no locks: blocking there exerts
// backpressure on exactly the client that is slow — its own read loop
// pauses — and a reply can never be silently lost. Cross-session sends
// must use sendWire instead (blocking on someone else's queue would let
// one slow consumer stall another member's handler).
func (s *Server) sendReliable(sess *session, msg protocol.Message) {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return
	}
	select {
	case sess.queue <- wire:
		s.unpinIfDown(sess)
	case <-sess.down:
	}
}

// sendWire hands pre-encoded wire bytes to the session's writer queue.
// It never blocks: when the queue is full the slow-consumer policy
// applies (count-and-drop, or disconnect). It reports false only for an
// overflow drop; a session that is already down returns true, since
// there is nothing left to deliver to.
func (s *Server) sendWire(sess *session, wire []byte) bool {
	select {
	case <-sess.down:
		return true
	default:
	}
	select {
	case sess.queue <- wire:
		s.unpinIfDown(sess)
		return true
	default:
		sess.drops.Add(1)
		if s.cfg.SlowPolicy == Disconnect {
			s.disconnect(sess)
		}
		return false
	}
}

// unpinIfDown covers the enqueue/disconnect race: if the session went
// down between the down-gate check and the enqueue, the writer is gone
// and disconnect's drain may already have run, so pull one message back
// out — a dead session's queue must stay empty or its buffers would be
// pinned for the server's lifetime.
func (s *Server) unpinIfDown(sess *session) {
	select {
	case <-sess.down:
		select {
		case <-sess.queue:
		default:
		}
	default:
	}
}

// writeLoop is the per-session writer: it drains the queue onto the
// connection until the session goes down or the connection fails.
func (s *Server) writeLoop(sess *session) {
	defer s.wg.Done()
	for {
		select {
		case wire := <-sess.queue:
			if err := sess.conn.Send(wire); err != nil {
				s.disconnect(sess)
				return
			}
		case <-sess.down:
			return
		}
	}
}

// SessionStats is one session's backpressure snapshot.
type SessionStats struct {
	// QueueDepth is the number of queued outbound messages right now.
	QueueDepth int
	// QueueCap is the queue's capacity (Config.SendQueueCap).
	QueueCap int
	// Drops counts messages dropped on overflow since the session began.
	Drops int64
}

// SessionStats returns per-member backpressure counters for every
// connected session — the observability half of the slow-consumer
// policy, also pushed to clients on the lights broadcast.
func (s *Server) SessionStats() map[string]SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SessionStats, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = SessionStats{
			QueueDepth: len(sess.queue),
			QueueCap:   cap(sess.queue),
			Drops:      sess.drops.Load(),
		}
	}
	return out
}

// New creates a server and starts listening. Call Serve (usually in a
// goroutine) to accept clients, and Close to shut down.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 200 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 3 * cfg.ProbeInterval
	}
	if cfg.SendQueueCap <= 0 {
		cfg.SendQueueCap = 256
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	registry := group.NewRegistry()
	s := &Server{
		cfg:      cfg,
		listener: l,
		registry: registry,
		floorCtl: floor.NewController(registry, cfg.Monitor),
		master:   clock.NewMaster(cfg.Clock),
		sessions: make(map[group.MemberID]*session),
		boards:   make(map[string]*groupBoard),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.probeLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Registry exposes the group administration (for tests and tools).
func (s *Server) Registry() *group.Registry { return s.registry }

// FloorController exposes the floor control state (for tests and tools).
func (s *Server) FloorController() *floor.Controller { return s.floorCtl }

// Master exposes the global clock master.
func (s *Server) Master() *clock.Master { return s.master }

// Serve accepts clients until Close. It returns nil after a clean Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Start runs Serve on a goroutine.
func (s *Server) Start() { go func() { _ = s.Serve() }() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		_ = s.listener.Close()
		s.mu.Lock()
		for _, sess := range s.sessions {
			_ = sess.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// handle runs one client session: handshake, then the message loop.
func (s *Server) handle(conn transport.Conn) {
	defer s.wg.Done()
	sess, err := s.handshake(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	for {
		wire, err := conn.Recv()
		if err != nil {
			s.disconnect(sess)
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			s.replyErr(sess, 0, "decode", err)
			continue
		}
		sess.touch(s.cfg.Clock.Now())
		if msg.Type == protocol.TBye {
			s.disconnect(sess)
			return
		}
		s.dispatch(sess, msg)
	}
}

// handshake admits a client: the first message must be THello.
func (s *Server) handshake(conn transport.Conn) (*session, error) {
	wire, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	msg, err := protocol.Decode(wire)
	if err != nil || msg.Type != protocol.THello {
		return nil, fmt.Errorf("server: handshake: got %v (%w)", msg.Type, transport.ErrClosed)
	}
	var hello protocol.HelloBody
	if err := msg.Into(&hello); err != nil {
		return nil, err
	}
	role := group.Participant
	if strings.EqualFold(hello.Role, "chair") {
		role = group.Chair
	}
	// Admission needs no server-wide lock: the ID counter is atomic and
	// the registry guards itself.
	id := group.MemberID(fmt.Sprintf("%s#%d", sanitize(hello.Name), s.nextID.Add(1)))
	member := group.Member{ID: id, Name: hello.Name, Role: role, Priority: hello.Priority}
	if err := s.registry.Register(member); err != nil {
		return nil, err
	}

	sess := &session{
		member:   member,
		conn:     conn,
		queue:    make(chan []byte, s.cfg.SendQueueCap),
		down:     make(chan struct{}),
		lastSeen: s.cfg.Clock.Now(),
		alive:    true,
	}
	// The welcome must be the first message the client sees, so send it
	// synchronously before the session becomes visible to broadcasts and
	// probes (the writer starts only after registration).
	welcome := protocol.MustNew(protocol.TWelcome, protocol.WelcomeBody{
		MemberID:        string(id),
		ServerTimeNanos: protocol.Nanos(s.master.GlobalNow()),
	})
	welcome.Seq = msg.Seq
	if err := sess.sendDirect(welcome); err != nil {
		s.registry.Unregister(id)
		_ = conn.Close()
		return nil, err
	}
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	s.wg.Add(1)
	go s.writeLoop(sess)
	return sess, nil
}

func sanitize(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, name)
	if name == "" {
		name = "member"
	}
	return name
}

// disconnect marks the session dead (light turns red; membership and
// floor state persist so the teacher can inspect the red light, as in
// Figure 3(c)). The writer goroutine is told to exit and the connection
// closed, which also unblocks a writer stalled mid-Send.
func (s *Server) disconnect(sess *session) {
	sess.mu.Lock()
	wasAlive := sess.alive
	sess.alive = false
	sess.mu.Unlock()
	sess.downOnce.Do(func() { close(sess.down) })
	_ = sess.conn.Close()
	// Drop the abandoned backlog so a dead session pins no buffers: the
	// session itself stays in the table (the red light persists, Figure
	// 3(c)) but its writer is gone and sendWire's down-gate stops new
	// enqueues, so one drain frees everything for good.
	for {
		select {
		case <-sess.queue:
			continue
		default:
		}
		break
	}
	select {
	case <-s.closed:
		// No lights rebroadcast during server shutdown.
		return
	default:
	}
	if wasAlive {
		// Rebroadcast the lights off this call stack: disconnect can be
		// reached from inside sendWire (Disconnect policy), and a
		// synchronous broadcast there would recurse once per
		// simultaneously-overflowing session — an O(sessions²) send
		// storm. One goroutine per transition is bounded by the wasAlive
		// guard and joins the server's WaitGroup so Close waits for it.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.broadcastLights()
		}()
	}
}

// groupBoard pairs the authoritative board with a mutex that serializes
// append+broadcast, so every connection observes operations in sequence
// order (concurrent handler goroutines would otherwise interleave a later
// sequence number ahead of an earlier one).
type groupBoard struct {
	mu    sync.Mutex
	board *whiteboard.Board
}

// board returns (creating) the group's authoritative board.
func (s *Server) board(groupID string) *groupBoard {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.boards[groupID]
	if !ok {
		b = &groupBoard{board: whiteboard.NewBoard()}
		s.boards[groupID] = b
	}
	return b
}

func (s *Server) replyAck(sess *session, seq int64, body any) {
	msg := protocol.MustNew(protocol.TAck, body)
	msg.Seq = seq
	s.sendReliable(sess, msg)
}

func (s *Server) replyErr(sess *session, seq int64, code string, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	msg := protocol.MustNew(protocol.TErr, protocol.ErrBody{Code: code, Detail: detail})
	msg.Seq = seq
	s.sendReliable(sess, msg)
}

// session returns the live session for a member, if connected.
func (s *Server) session(id group.MemberID) (*session, bool) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	return sess, ok
}

// sendTo delivers a message to one member if connected.
func (s *Server) sendTo(id group.MemberID, msg protocol.Message) {
	if sess, ok := s.session(id); ok {
		s.sendMsg(sess, msg)
	}
}

// sendFloorTo delivers a floor event to one member, scheduling a
// floor-state resync for the group when the event is dropped.
func (s *Server) sendFloorTo(groupID string, id group.MemberID, msg protocol.Message) {
	if sess, ok := s.session(id); ok && !s.sendMsg(sess, msg) {
		sess.markResync(groupID, resyncFloor)
	}
}

// sendInviteTo delivers an invitation event, scheduling a re-push of
// the member's pending invitations when it is dropped.
func (s *Server) sendInviteTo(id group.MemberID, msg protocol.Message) {
	if sess, ok := s.session(id); ok && !s.sendMsg(sess, msg) {
		sess.markInviteResync()
	}
}

// broadcastGroup delivers a message to every connected member of a
// group: the message is encoded exactly once and the wire bytes are
// queued to each recipient's writer, with the session table snapshotted
// under a single lock acquisition. It returns the sessions whose queue
// overflowed (nil when everyone got it).
func (s *Server) broadcastGroup(groupID string, msg protocol.Message) []*session {
	members, err := s.registry.GroupMembers(groupID)
	if err != nil {
		return nil
	}
	wire, err := protocol.Encode(msg)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	targets := make([]*session, 0, len(members))
	for _, m := range members {
		if sess, ok := s.sessions[m.ID]; ok {
			targets = append(targets, sess)
		}
	}
	s.mu.Unlock()
	var dropped []*session
	for _, sess := range targets {
		if !s.sendWire(sess, wire) {
			dropped = append(dropped, sess)
		}
	}
	return dropped
}

// broadcastRepairable is broadcastGroup for state-carrying events
// (floor, board, suspend/resume): recipients whose queue dropped the
// event are marked for a state resync on the next probe tick, so a
// drop degrades to a short delay instead of a permanent divergence — a
// lost grant would otherwise wedge a token group, and a lost
// tail-of-burst board op would leave a quiet replica stale with no gap
// to trigger replay. The class re-pushed is inferred from the message
// type.
func (s *Server) broadcastRepairable(groupID string, msg protocol.Message) {
	class := resyncClassOf(msg.Type)
	for _, sess := range s.broadcastGroup(groupID, msg) {
		sess.markResync(groupID, class)
	}
}

// Broadcast delivers a server-originated message to every connected
// member of a group — announcements, and the fan-out benchmarks.
func (s *Server) Broadcast(groupID string, msg protocol.Message) {
	s.broadcastGroup(groupID, msg)
}
