// Package server implements the DMPS server: the centralized group
// administration and floor control of the paper ("the floor control model
// is managed by group administration of the DMPS server; all the users'
// floor control request inputs are sent to the server"), the global clock
// master, per-mode message routing, the sequenced whiteboard/message
// window, and the connection-status monitor behind the Figure-3
// red/green lights.
package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"dmps/internal/clock"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// Light is a connection-status light (paper Figure 3).
type Light string

const (
	// Green: the client is connected and answering probes.
	Green Light = "green"
	// Red: the client has disconnected or stopped answering.
	Red Light = "red"
)

// Config configures a server.
type Config struct {
	// Network provides the listener (TCP or netsim).
	Network transport.Network
	// Addr is the listen address.
	Addr string
	// Clock drives the global clock master and the status prober
	// (defaults to the real clock).
	Clock clock.Clock
	// Monitor supplies resource availability for FCM-Arbitrate (nil
	// means always Normal).
	Monitor *resource.Monitor
	// ProbeInterval is the status-probe period (default 200ms).
	ProbeInterval time.Duration
	// ProbeTimeout marks a client red after this silence (default 3×
	// the interval).
	ProbeTimeout time.Duration
}

// Server is a running DMPS server.
type Server struct {
	cfg      Config
	listener transport.Listener
	registry *group.Registry
	floorCtl *floor.Controller
	master   *clock.Master

	mu       sync.Mutex
	sessions map[group.MemberID]*session
	boards   map[string]*groupBoard
	nextID   int

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// session is one connected client.
type session struct {
	member group.Member
	conn   transport.Conn
	sendMu sync.Mutex

	mu       sync.Mutex
	lastSeen time.Time
	alive    bool
}

func (s *session) send(msg protocol.Message) error {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return err
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return s.conn.Send(wire)
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

func (s *session) light(now time.Time, timeout time.Duration) Light {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive || now.Sub(s.lastSeen) > timeout {
		return Red
	}
	return Green
}

// New creates a server and starts listening. Call Serve (usually in a
// goroutine) to accept clients, and Close to shut down.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("server: Config.Network is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 200 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 3 * cfg.ProbeInterval
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	registry := group.NewRegistry()
	s := &Server{
		cfg:      cfg,
		listener: l,
		registry: registry,
		floorCtl: floor.NewController(registry, cfg.Monitor),
		master:   clock.NewMaster(cfg.Clock),
		sessions: make(map[group.MemberID]*session),
		boards:   make(map[string]*groupBoard),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.probeLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Registry exposes the group administration (for tests and tools).
func (s *Server) Registry() *group.Registry { return s.registry }

// FloorController exposes the floor control state (for tests and tools).
func (s *Server) FloorController() *floor.Controller { return s.floorCtl }

// Master exposes the global clock master.
func (s *Server) Master() *clock.Master { return s.master }

// Serve accepts clients until Close. It returns nil after a clean Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Start runs Serve on a goroutine.
func (s *Server) Start() { go func() { _ = s.Serve() }() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		_ = s.listener.Close()
		s.mu.Lock()
		for _, sess := range s.sessions {
			_ = sess.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// handle runs one client session: handshake, then the message loop.
func (s *Server) handle(conn transport.Conn) {
	defer s.wg.Done()
	sess, err := s.handshake(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	for {
		wire, err := conn.Recv()
		if err != nil {
			s.disconnect(sess)
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			s.replyErr(sess, 0, "decode", err)
			continue
		}
		sess.touch(s.cfg.Clock.Now())
		if msg.Type == protocol.TBye {
			s.disconnect(sess)
			return
		}
		s.dispatch(sess, msg)
	}
}

// handshake admits a client: the first message must be THello.
func (s *Server) handshake(conn transport.Conn) (*session, error) {
	wire, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	msg, err := protocol.Decode(wire)
	if err != nil || msg.Type != protocol.THello {
		return nil, fmt.Errorf("server: handshake: got %v (%w)", msg.Type, transport.ErrClosed)
	}
	var hello protocol.HelloBody
	if err := msg.Into(&hello); err != nil {
		return nil, err
	}
	role := group.Participant
	if strings.EqualFold(hello.Role, "chair") {
		role = group.Chair
	}
	s.mu.Lock()
	s.nextID++
	id := group.MemberID(fmt.Sprintf("%s#%d", sanitize(hello.Name), s.nextID))
	member := group.Member{ID: id, Name: hello.Name, Role: role, Priority: hello.Priority}
	if err := s.registry.Register(member); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	sess := &session{member: member, conn: conn, lastSeen: s.cfg.Clock.Now(), alive: true}
	// The welcome must be the first message the client sees, so send it
	// before the session becomes visible to broadcasts and probes.
	welcome := protocol.MustNew(protocol.TWelcome, protocol.WelcomeBody{
		MemberID:        string(id),
		ServerTimeNanos: protocol.Nanos(s.master.GlobalNow()),
	})
	welcome.Seq = msg.Seq
	if err := sess.send(welcome); err != nil {
		s.registry.Unregister(id)
		_ = conn.Close()
		return nil, err
	}
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	return sess, nil
}

func sanitize(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, name)
	if name == "" {
		name = "member"
	}
	return name
}

// disconnect marks the session dead (light turns red; membership and
// floor state persist so the teacher can inspect the red light, as in
// Figure 3(c)).
func (s *Server) disconnect(sess *session) {
	sess.mu.Lock()
	wasAlive := sess.alive
	sess.alive = false
	sess.mu.Unlock()
	_ = sess.conn.Close()
	if wasAlive {
		s.broadcastLights()
	}
}

// groupBoard pairs the authoritative board with a mutex that serializes
// append+broadcast, so every connection observes operations in sequence
// order (concurrent handler goroutines would otherwise interleave a later
// sequence number ahead of an earlier one).
type groupBoard struct {
	mu    sync.Mutex
	board *whiteboard.Board
}

// board returns (creating) the group's authoritative board.
func (s *Server) board(groupID string) *groupBoard {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.boards[groupID]
	if !ok {
		b = &groupBoard{board: whiteboard.NewBoard()}
		s.boards[groupID] = b
	}
	return b
}

func (s *Server) replyAck(sess *session, seq int64, body any) {
	msg := protocol.MustNew(protocol.TAck, body)
	msg.Seq = seq
	_ = sess.send(msg)
}

func (s *Server) replyErr(sess *session, seq int64, code string, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	msg := protocol.MustNew(protocol.TErr, protocol.ErrBody{Code: code, Detail: detail})
	msg.Seq = seq
	_ = sess.send(msg)
}

// sendTo delivers a message to one member if connected.
func (s *Server) sendTo(id group.MemberID, msg protocol.Message) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if ok {
		_ = sess.send(msg)
	}
}

// broadcastGroup delivers a message to every connected member of a group.
func (s *Server) broadcastGroup(groupID string, msg protocol.Message) {
	members, err := s.registry.GroupMembers(groupID)
	if err != nil {
		return
	}
	for _, m := range members {
		s.sendTo(m.ID, msg)
	}
}
