package server

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/protocol"
	"dmps/internal/trace"
	"dmps/internal/whiteboard"
)

// dispatch routes one decoded client message. In cluster mode a
// group-scoped request for a partition this node does not serve is
// intercepted first and answered with the typed node_moved redirect.
func (s *Server) dispatch(sess *session, msg protocol.Message) {
	if s.clusterGroupGate(sess, msg) {
		return
	}
	switch msg.Type {
	case protocol.TJoin:
		s.onJoin(sess, msg)
	case protocol.TCreateGroup:
		s.onCreateGroup(sess, msg)
	case protocol.TLeave:
		s.onLeave(sess, msg)
	case protocol.TFloorRequest:
		s.onFloorRequest(sess, msg)
	case protocol.TFloorRelease:
		s.onFloorRelease(sess, msg)
	case protocol.TTokenPass:
		s.onTokenPass(sess, msg)
	case protocol.TFloorApprove:
		s.onFloorApprove(sess, msg)
	case protocol.TInvite:
		s.onInvite(sess, msg)
	case protocol.TInviteReply:
		s.onInviteReply(sess, msg)
	case protocol.TChat:
		s.onChat(sess, msg)
	case protocol.TAnnotate:
		s.onAnnotate(sess, msg)
	case protocol.TReplay:
		s.onReplay(sess, msg)
	case protocol.TBackfill:
		s.onBackfill(sess, msg)
	case protocol.TModeSwitch:
		s.onModeSwitch(sess, msg)
	case protocol.TSubscribe:
		s.onSubscribe(sess, msg)
	case protocol.TClockSync:
		s.onClockSync(sess, msg)
	case protocol.TStatusReport:
		// touch already happened in the read loop; ack not needed.
	case protocol.TPresent:
		s.onPresent(sess, msg)
	case protocol.TMediaUnit:
		s.onMediaUnit(sess, msg)
	default:
		s.replyErr(sess, msg.Seq, "unknown_type", fmt.Errorf("server: unhandled %q", msg.Type))
	}
}

// validGroupID rejects group names that would collide with the event-
// log plane's reserved member-log keyspace ("~member").
func validGroupID(id string) error {
	if strings.HasPrefix(id, "~") {
		return fmt.Errorf("server: group %q: names starting with '~' are reserved", id)
	}
	return nil
}

// onJoin joins (auto-creating) a group: the paper's "user need to initial
// the group first" — the first joiner becomes the session chair.
func (s *Server) onJoin(sess *session, msg protocol.Message) {
	var body protocol.GroupBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if err := validGroupID(body.Group); err != nil {
		s.replyErr(sess, msg.Seq, "join", err)
		return
	}
	err := s.registry.Join(body.Group, sess.member.ID)
	if errors.Is(err, group.ErrUnknownGroup) {
		err = s.registry.CreateGroup(body.Group, sess.member.ID)
	}
	if err != nil {
		s.replyErr(sess, msg.Seq, "join", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.GroupBody{Group: body.Group})
	s.replicateMembers(body.Group)
	// One snapshot converges the late joiner: board history, floor
	// state, suspensions, and the log position live events continue from.
	s.sendSnapshot(sess, body.Group, 0)
	s.broadcastLights()
}

func (s *Server) onCreateGroup(sess *session, msg protocol.Message) {
	var body protocol.GroupBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if err := validGroupID(body.Group); err != nil {
		s.replyErr(sess, msg.Seq, "create_group", err)
		return
	}
	if err := s.registry.CreateGroup(body.Group, sess.member.ID); err != nil {
		s.replyErr(sess, msg.Seq, "create_group", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.GroupBody{Group: body.Group})
	s.replicateMembers(body.Group)
}

func (s *Server) onLeave(sess *session, msg protocol.Message) {
	var body protocol.GroupBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if err := s.registry.Leave(body.Group, sess.member.ID); err != nil {
		s.replyErr(sess, msg.Seq, "leave", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.GroupBody{Group: body.Group})
	s.replicateMembers(body.Group)
}

// onFloorRequest runs FCM-Arbitrate and reports the decision. Every
// request is centralized here, per the paper.
func (s *Server) onFloorRequest(sess *session, msg protocol.Message) {
	var body protocol.FloorRequestBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	mode, ok := floor.ParseMode(body.Mode)
	if !ok {
		s.replyErr(sess, msg.Seq, "bad_mode", fmt.Errorf("server: unknown mode %q", body.Mode))
		return
	}
	tc := traceOf(msg)
	var t0 time.Time
	if tc.sampled() {
		t0 = time.Now()
	}
	dec, err := s.floorCtl.Arbitrate(msg.Group, sess.member.ID, mode, group.MemberID(body.Target))
	if tc.sampled() {
		s.plane.Span(tc.id, msg.TraceParent, trace.StageArbitrate, t0)
	}
	decision := decisionBody(dec)
	if err != nil {
		decision.Reason = err.Error()
		// A queued request is not a failure: ack with the queue position
		// and log the queueing — the queue is group state, so the event
		// broadcasts (and is backfillable) like any other transition.
		if errors.Is(err, floor.ErrBusy) {
			s.replyAck(sess, msg.Seq, decision)
			s.notifySuspensions(msg.Group, dec, tc)
			// The broadcast form is redacted (queue length only); the
			// requester's copy is personalized with their slot.
			s.logFloorEvent(msg.Group, protocol.FloorEventBody{
				Mode:   mode.String(),
				Holder: string(dec.Holder),
				Member: string(sess.member.ID),
				Event:  "queued",
			}, tc)
			return
		}
		s.replyErr(sess, msg.Seq, "floor_denied", err)
		// A denied request can still have Media-Suspended someone in the
		// degraded regime — the victim must hear about it here too.
		s.notifySuspensions(msg.Group, dec, tc)
		// Push the denial to the requester's event stream too, so
		// Subscribe sees every outcome, not just grants and queueing. A
		// denial changes no group state, so it stays requester-directed
		// and unlogged — sendReliable means it cannot be dropped either.
		// dec.Holder (not a Holder() lookup, which would create floor
		// state for arbitrary group names on a pure-deny path): denials
		// carry no holder claim.
		denied := protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{
			Mode:   mode.String(),
			Holder: string(dec.Holder),
			Member: string(sess.member.ID),
			Event:  "denied",
		})
		denied.Group = msg.Group
		s.sendReliable(sess, denied)
		return
	}
	s.replyAck(sess, msg.Seq, decision)
	s.notifySuspensions(msg.Group, dec, tc)
	s.logFloorEvent(msg.Group, protocol.FloorEventBody{
		Mode:   mode.String(),
		Holder: string(dec.Holder),
		Member: string(sess.member.ID),
		Event:  "granted",
	}, tc)
	// A grant can dequeue the requester (e.g. an approved member
	// re-requesting a moderated floor), shifting everyone behind them.
	s.markQueueRestate(msg.Group, mode)
}

// onSubscribe replaces the session's event-class mask: logged events of
// classes outside it stop reaching this session's queue, and the heads
// digest is filtered to match — the class filter runs server-side, so
// an unsubscribed class costs the client zero bytes under churn. The
// initial mask arrives with the hello (HelloBody.Classes); widening it
// later converges like a late join: the first event of a newly wanted
// class either continues the client's cursor, is a state-bearing
// restatement it jumps onto, or triggers a backfill.
func (s *Server) onSubscribe(sess *session, msg protocol.Message) {
	var body protocol.SubscribeBody
	if len(msg.Body) > 0 {
		if err := msg.Into(&body); err != nil {
			s.replyErr(sess, msg.Seq, "bad_body", err)
			return
		}
	}
	sess.classes.Store(classSet(body.Classes))
	// Fire-and-forget widenings (Subscribe's automatic mask growth)
	// carry no Seq and want no ack; explicit SetEventClasses does.
	if msg.Seq != 0 {
		s.replyAck(sess, msg.Seq, protocol.SubscribeBody{Classes: body.Classes})
	}
}

// onModeSwitch sets the group's floor mode explicitly. The controller
// enforces the chair-pinned policy (a pinned group only obeys its
// chair, and only the chair may pin) and the outgoing policy's exit
// gate; a successful switch resets the floor and is logged to the
// group's event stream as a "mode_switch".
func (s *Server) onModeSwitch(sess *session, msg protocol.Message) {
	var body protocol.ModeSwitchBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	mode, ok := floor.ParseMode(body.Mode)
	if !ok {
		s.replyErr(sess, msg.Seq, "bad_mode", fmt.Errorf("server: unknown mode %q", body.Mode))
		return
	}
	newMode, changed, err := s.floorCtl.SwitchMode(msg.Group, sess.member.ID, mode, body.Pin)
	if err != nil {
		s.replyErr(sess, msg.Seq, "mode_switch", err)
		return
	}
	note := protocol.FloorEventBody{
		Mode:   newMode.String(),
		Member: string(sess.member.ID),
		Event:  "mode_switch",
	}
	s.replyAck(sess, msg.Seq, note)
	// A same-mode call only updates the pin: nothing about the floor
	// changed, so broadcasting would make every client wrongly clear its
	// cached holder and queue position.
	if changed {
		s.logFloorEvent(msg.Group, note, traceOf(msg))
	}
}

// onFloorApprove clears a queued request in a moderated mode: the chair
// names the member; if the floor is free the member is granted at once,
// otherwise they are marked approved and promoted on the next release.
func (s *Server) onFloorApprove(sess *session, msg protocol.Message) {
	var body protocol.FloorApproveBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	member := group.MemberID(body.Member)
	dec, err := s.floorCtl.Approve(msg.Group, sess.member.ID, member)
	if err != nil {
		s.replyErr(sess, msg.Seq, "approve", err)
		return
	}
	s.replyAck(sess, msg.Seq, decisionBody(dec))
	event := "approved"
	if dec.Granted {
		event = "granted"
	}
	s.logFloorEvent(msg.Group, protocol.FloorEventBody{
		Mode:   dec.Mode.String(),
		Holder: string(dec.Holder),
		Member: string(member),
		Event:  event,
	}, traceOf(msg))
	s.markQueueRestate(msg.Group, dec.Mode)
}

// notifySuspensions tells each Media-Suspend victim and the group. The
// notice is logged and state-bearing — it restates the whole suspended
// set — so a recipient whose queue dropped it converges from the next
// suspend-class event or the snapshot reconciliation.
func (s *Server) notifySuspensions(groupID string, dec floor.Decision, tc traceCtx) {
	for _, victim := range dec.Suspended {
		s.logSuspend(groupID, protocol.TSuspend, string(victim), dec.Level, tc)
	}
}

func (s *Server) onFloorRelease(sess *session, msg protocol.Message) {
	next, err := s.floorCtl.Release(msg.Group, sess.member.ID)
	if err != nil {
		s.replyErr(sess, msg.Seq, "release", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.FloorEventBody{Holder: string(next), Event: "released"})
	mode := s.floorCtl.ModeOf(msg.Group)
	s.logFloorEvent(msg.Group, protocol.FloorEventBody{
		Mode:   mode.String(),
		Holder: string(next),
		Member: string(sess.member.ID),
		Event:  "released",
	}, traceOf(msg))
	s.markQueueRestate(msg.Group, mode)
}

func (s *Server) onTokenPass(sess *session, msg protocol.Message) {
	var body protocol.TokenPassBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if err := s.floorCtl.Pass(msg.Group, sess.member.ID, group.MemberID(body.To)); err != nil {
		s.replyErr(sess, msg.Seq, "pass", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.FloorEventBody{Holder: body.To, Event: "passed"})
	mode := s.floorCtl.ModeOf(msg.Group)
	s.logFloorEvent(msg.Group, protocol.FloorEventBody{
		Mode:   mode.String(),
		Holder: body.To,
		Member: string(sess.member.ID),
		Event:  "passed",
	}, traceOf(msg))
	s.markQueueRestate(msg.Group, mode)
}

func (s *Server) onInvite(sess *session, msg protocol.Message) {
	var body protocol.InviteBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	to := group.MemberID(body.To)
	invite := s.registry.Invite
	if s.cluster != nil && !s.homesMember(to) {
		// Cross-partition invitation: the invitee's directory row lives
		// on their home node, not here, so the record is created without
		// the local existence check — no fabricated (and unreapable)
		// directory row. The home node validates existence at delivery;
		// an accepted invite registers the member properly when their
		// node-scoped session opens.
		invite = s.registry.InviteRemote
	}
	inv, err := invite(body.Group, sess.member.ID, to)
	if err != nil {
		s.replyErr(sess, msg.Seq, "invite", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.InviteEventBody{InviteID: inv.ID, Group: inv.Group, From: string(inv.From)})
	note := protocol.MustNew(protocol.TInviteEvent, protocol.InviteEventBody{
		InviteID: inv.ID, Group: inv.Group, From: string(inv.From),
	})
	traceOf(msg).stamp(&note)
	// Member-directed state: logged in the invitee's own event log — on
	// their home node, across a typed forward if that is another process
	// — so a drop (or an offline invitee) is repaired through backfill.
	s.deliverMemberEvent(inv.To, note)
}

func (s *Server) onInviteReply(sess *session, msg protocol.Message) {
	var body protocol.InviteReplyBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	inv, err := s.registry.Respond(body.InviteID, sess.member.ID, body.Accept)
	if err != nil {
		s.replyErr(sess, msg.Seq, "invite_reply", err)
		return
	}
	s.replyAck(sess, msg.Seq, protocol.InviteEventBody{InviteID: inv.ID, Group: inv.Group, From: string(inv.From)})
	// Tell the inviter the outcome.
	outcome := "declined"
	if inv.Status == group.Accepted {
		outcome = "accepted"
		s.replicateMembers(inv.Group)
		// One snapshot converges the new member on the sub-group.
		s.sendSnapshot(sess, inv.Group, 0)
	}
	note := protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{
		Member: string(inv.To),
		Event:  "invite_" + outcome,
	})
	note.Group = inv.Group
	s.sendTo(inv.From, note)
}

// onChat posts to the message window, enforcing the capability matrix
// and Media-Suspend, and routes per the floor mode: private windows
// (msg.To set) go only to the contact peer; otherwise the group sees it.
func (s *Server) onChat(sess *session, msg protocol.Message) {
	var body protocol.ChatBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if !s.floorCtl.MediaAvailable(msg.Group, sess.member.ID) {
		s.replyErr(sess, msg.Seq, "suspended", fmt.Errorf("server: media suspended for %s", sess.member.ID))
		return
	}
	if msg.To != "" {
		// Direct-contact private window.
		peer := s.floorCtl.ContactPeer(msg.Group, sess.member.ID)
		if string(peer) != msg.To {
			s.replyErr(sess, msg.Seq, "no_contact", fmt.Errorf("server: no direct contact with %q", msg.To))
			return
		}
		event := protocol.MustNew(protocol.TChatEvent, protocol.SequencedBody{
			Author: string(sess.member.ID), Kind: "private", Data: body.Text,
		})
		event.Group = msg.Group
		event.From = string(sess.member.ID)
		event.To = msg.To
		s.sendTo(peer, event)
		s.replyAck(sess, msg.Seq, protocol.SequencedBody{Author: string(sess.member.ID), Kind: "private", Data: body.Text})
		return
	}
	if !s.floorCtl.CapabilityFor(msg.Group, sess.member.ID).MessageWindow {
		s.replyErr(sess, msg.Seq, "no_floor", fmt.Errorf("server: %s may not send in %v mode", sess.member.ID, s.floorCtl.ModeOf(msg.Group)))
		return
	}
	gb := s.board(msg.Group)
	gb.mu.Lock()
	op, err := gb.board.Append(string(sess.member.ID), whiteboard.Text, body.Text)
	if err != nil {
		gb.mu.Unlock()
		s.replyErr(sess, msg.Seq, "board", err)
		return
	}
	// The broadcast coalesces under storms: contiguous same-author lines
	// within a tick ride a single logged event; an idle board logs
	// inline (leading-edge flush).
	s.enqueueBoardOp(msg.Group, gb, op, "text", protocol.TChatEvent)
	gb.mu.Unlock()
	s.replyAck(sess, msg.Seq, protocol.SequencedBody{Seq: op.Seq, Author: op.Author, Kind: "text", Data: op.Data})
}

func (s *Server) onAnnotate(sess *session, msg protocol.Message) {
	var body protocol.AnnotateBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if !s.floorCtl.MediaAvailable(msg.Group, sess.member.ID) {
		s.replyErr(sess, msg.Seq, "suspended", fmt.Errorf("server: media suspended for %s", sess.member.ID))
		return
	}
	if !s.floorCtl.CapabilityFor(msg.Group, sess.member.ID).Whiteboard {
		s.replyErr(sess, msg.Seq, "no_floor", fmt.Errorf("server: %s may not annotate in %v mode", sess.member.ID, s.floorCtl.ModeOf(msg.Group)))
		return
	}
	kind, ok := whiteboard.ParseOpKind(body.Kind)
	if !ok {
		s.replyErr(sess, msg.Seq, "bad_kind", fmt.Errorf("server: unknown op kind %q", body.Kind))
		return
	}
	gb := s.board(msg.Group)
	gb.mu.Lock()
	op, err := gb.board.Append(string(sess.member.ID), kind, body.Data)
	if err != nil {
		gb.mu.Unlock()
		s.replyErr(sess, msg.Seq, "board", err)
		return
	}
	// An annotation storm coalesces into per-tick batched events; the
	// authoritative append above is immediate either way, and an idle
	// board logs inline.
	s.enqueueBoardOp(msg.Group, gb, op, body.Kind, protocol.TAnnotateEvent)
	gb.mu.Unlock()
	s.replyAck(sess, msg.Seq, protocol.SequencedBody{Seq: op.Seq, Author: op.Author, Kind: body.Kind, Data: op.Data})
}

// onReplay answers the legacy explicit-replay request with a snapshot
// carrying the board suffix after the given sequence number — the same
// convergence payload late joiners and wrapped backfills use. Boards
// are group-private (the breakout isolation of Figure 2): only members
// may replay.
func (s *Server) onReplay(sess *session, msg protocol.Message) {
	var body protocol.ReplayBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	if !s.registry.IsMember(msg.Group, sess.member.ID) {
		s.replyErr(sess, msg.Seq, "not_member", fmt.Errorf("server: %s not in %q", sess.member.ID, msg.Group))
		return
	}
	s.sendSnapshot(sess, msg.Group, body.After)
	s.replyAck(sess, msg.Seq, protocol.ReplayBody{After: body.After})
}

// onClockSync answers a Cristian exchange with the master time.
func (s *Server) onClockSync(sess *session, msg protocol.Message) {
	var body protocol.ClockSyncBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	body.MasterNanos = protocol.Nanos(s.master.GlobalNow())
	reply := protocol.MustNew(protocol.TClockSync, body)
	reply.Seq = msg.Seq
	s.sendReliable(sess, reply)
}

// onPresent broadcasts a presentation start to the group. Only the
// session chair may start one.
func (s *Server) onPresent(sess *session, msg protocol.Message) {
	chair, err := s.registry.Chair(msg.Group)
	if err != nil {
		s.replyErr(sess, msg.Seq, "present", err)
		return
	}
	if chair != sess.member.ID {
		s.replyErr(sess, msg.Seq, "present", fmt.Errorf("server: only the chair starts presentations"))
		return
	}
	var body protocol.PresentBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}
	s.replyAck(sess, msg.Seq, body)
	event := protocol.MustNew(protocol.TPresent, body)
	event.Group = msg.Group
	s.broadcastGroup(msg.Group, event)
}

// onMediaUnit relays a streamed media unit to the group, gated by the
// floor: the sender needs the message-window capability (the "deliver"
// right of the current mode) and unsuspended media. Units without a Seq
// are fire-and-forget: denials drop silently, like a muted microphone;
// units with a Seq get an explicit ack/deny.
func (s *Server) onMediaUnit(sess *session, msg protocol.Message) {
	var body protocol.MediaUnitBody
	if err := msg.Into(&body); err != nil {
		if msg.Seq != 0 {
			s.replyErr(sess, msg.Seq, "bad_body", err)
		}
		return
	}
	allowed := s.floorCtl.MediaAvailable(msg.Group, sess.member.ID) &&
		s.floorCtl.CapabilityFor(msg.Group, sess.member.ID).MessageWindow
	if !allowed {
		if msg.Seq != 0 {
			s.replyErr(sess, msg.Seq, "no_floor", fmt.Errorf("server: %s may not stream in %v mode", sess.member.ID, s.floorCtl.ModeOf(msg.Group)))
		}
		return
	}
	event := protocol.MustNew(protocol.TMediaUnit, body)
	event.Group = msg.Group
	event.From = string(sess.member.ID)
	s.broadcastGroup(msg.Group, event)
	if msg.Seq != 0 {
		s.replyAck(sess, msg.Seq, body)
	}
}

func decisionBody(dec floor.Decision) protocol.FloorDecisionBody {
	out := protocol.FloorDecisionBody{
		Granted:       dec.Granted,
		Mode:          dec.Mode.String(),
		Holder:        string(dec.Holder),
		QueuePosition: dec.QueuePosition,
		Level:         dec.Level.String(),
		Target:        string(dec.Target),
	}
	for _, m := range dec.Suspended {
		out.Suspended = append(out.Suspended, string(m))
	}
	return out
}
