package server

// Epoch-versioned live migration: the node-side half of Router.Recover.
// When a node returns to the ring (replacement, restart, ring growth),
// the state its partitions accumulated elsewhere — adopted live state
// on the nodes that took over, plus replica packages that were never
// adopted — must move back BEFORE the partition map reassigns traffic,
// or the recovered primary would serve its partitions empty (the
// split-brain Map.MarkUp used to cause). The coordinator (the router)
// bumps the map epoch, asks every surviving node to ship what it holds
// for the recovering node (ForwardMigrate), and only after every node
// confirms (ForwardMigrated) marks the node up and pushes node_moved.
// Shipped packages are stamped with the epoch; receivers discard
// packages from epochs older than one already installed, which makes
// repeated or racing migrations converge instead of resurrecting stale
// state.

import (
	"strings"

	"dmps/internal/cluster"
	"dmps/internal/group"
	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/transport"
)

// replicaEventsToWire converts retained replica events to their wire
// (takeover-package) form.
func replicaEventsToWire(events []cluster.ReplicaEvent) []protocol.ReplicaEventBody {
	out := make([]protocol.ReplicaEventBody, 0, len(events))
	for _, e := range events {
		eb := protocol.ReplicaEventBody{GSeq: e.GSeq, CSeq: e.CSeq, Class: e.Class, State: e.State}
		eb.SetWire(e.Wire)
		out = append(out, eb)
	}
	return out
}

// wireEventsToReplica converts takeover-package events back to replica
// form, reporting the highest GSeq alongside.
func wireEventsToReplica(events []protocol.ReplicaEventBody) ([]cluster.ReplicaEvent, int64) {
	out := make([]cluster.ReplicaEvent, 0, len(events))
	var head int64
	for _, e := range events {
		out = append(out, cluster.ReplicaEvent{
			GSeq: e.GSeq, CSeq: e.CSeq, Class: e.Class, State: e.State, Wire: e.WireBytes(),
		})
		if e.GSeq > head {
			head = e.GSeq
		}
	}
	return out, head
}

// takeoverFromReplica builds a takeover package from a stored replica.
func takeoverFromReplica(key string, epoch int64, rep cluster.GroupReplica) protocol.TakeoverBody {
	tb := protocol.TakeoverBody{
		Key: key, Epoch: epoch, Chair: rep.Chair, Members: rep.Members,
		Floor: rep.Floor, BoardHead: rep.BoardHead,
		Events: replicaEventsToWire(rep.Events),
	}
	return tb
}

// liveGroupTakeover dumps a group's LIVE state — registry roster, floor
// controller snapshot, retained log window, board head — into a
// takeover package. Used for partitions this node adopted and served.
func (s *Server) liveGroupTakeover(gid string, epoch int64) protocol.TakeoverBody {
	tb := protocol.TakeoverBody{Key: gid, Epoch: epoch}
	if members, err := s.registry.GroupMembers(gid); err == nil {
		for _, m := range members {
			tb.Members = append(tb.Members, memberInfo(m))
		}
	}
	if chair, err := s.registry.Chair(gid); err == nil {
		tb.Chair = string(chair)
	}
	mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(gid)
	blob := &protocol.FloorReplicaBody{Mode: mode.String(), Holder: string(holder), Pinned: pinned}
	for _, m := range queue {
		blob.Queue = append(blob.Queue, string(m))
	}
	for _, m := range suspended {
		blob.Suspended = append(blob.Suspended, string(m))
	}
	tb.Floor = blob
	if lg, ok := s.logs.Peek(gid); ok {
		for _, e := range lg.Dump() {
			eb := protocol.ReplicaEventBody{GSeq: e.GSeq, CSeq: e.CSeq, Class: e.Class, State: e.State}
			eb.SetWire(e.Wire)
			tb.Events = append(tb.Events, eb)
		}
	}
	gb := s.board(gid)
	gb.mu.Lock()
	tb.BoardHead = gb.board.Seq()
	gb.mu.Unlock()
	return tb
}

// liveMemberTakeover dumps an adopted member home's live state.
func (s *Server) liveMemberTakeover(id string, epoch int64) protocol.TakeoverBody {
	tb := protocol.TakeoverBody{Key: grouplog.MemberKey(id), Epoch: epoch}
	if m, err := s.registry.Member(group.MemberID(id)); err == nil {
		info := memberInfo(m)
		tb.Member = &info
	}
	s.mu.Lock()
	tb.Token = s.tokenOf[group.MemberID(id)]
	s.mu.Unlock()
	if lg, ok := s.logs.Peek(grouplog.MemberKey(id)); ok {
		for _, e := range lg.Dump() {
			eb := protocol.ReplicaEventBody{GSeq: e.GSeq, CSeq: e.CSeq, Class: e.Class, State: e.State}
			eb.SetWire(e.Wire)
			tb.Events = append(tb.Events, eb)
		}
	}
	return tb
}

// runMigration is the node side of a coordinated recovery: freeze every
// key this node holds for the recovering node (adopted live state and
// never-adopted replica packages alike), ship takeover packages over a
// dedicated connection, wait for the receiver's barrier ack (the
// transport is in-order, so the ack certifies every package installed),
// drop the local claim, and reply ForwardMigrated to the coordinator on
// the inbound connection.
func (s *Server) runMigration(conn transport.Conn, body protocol.ForwardBody) {
	reply := func(groups []string) {
		_ = conn.Send(cluster.WrapForward(protocol.ForwardBody{
			Kind: protocol.ForwardMigrated, Groups: groups, Epoch: body.Epoch,
		}))
	}
	if body.Addr == "" {
		reply(nil)
		return
	}
	epoch := body.Epoch
	s.cluster.topo.AdvanceEpoch(epoch)

	// Freeze: collect the adopted keys owed to the recovering node and
	// gate traffic for them (node_moved) until the handoff completes.
	s.cluster.mu.Lock()
	var groups, members []string
	for gid := range s.cluster.adopted {
		if s.cluster.topo.Primary(gid) == body.Node {
			groups = append(groups, gid)
			s.cluster.migrating[gid] = true
		}
	}
	for id := range s.cluster.adoptedMembers {
		if s.cluster.topo.Primary(cluster.HomeKey(id)) == body.Node {
			members = append(members, id)
			s.cluster.migrating[grouplog.MemberKey(id)] = true
		}
	}
	s.cluster.mu.Unlock()

	// Never-adopted replica packages for the node's partitions: the
	// recovering node may have restarted empty, so the replica this node
	// holds can be the only copy of a partition that saw no traffic
	// while the node was down.
	var packages []protocol.TakeoverBody
	for _, key := range s.cluster.store.GroupKeys() {
		owner := key
		if strings.HasPrefix(key, "~") {
			owner = cluster.HomeKey(strings.TrimPrefix(key, "~"))
		}
		if s.cluster.topo.Primary(owner) != body.Node {
			continue
		}
		if rep, ok := s.cluster.store.Take(key); ok {
			packages = append(packages, takeoverFromReplica(key, epoch, rep))
		}
	}
	for _, id := range s.cluster.store.MemberIDs() {
		if s.cluster.topo.Primary(cluster.HomeKey(id)) != body.Node {
			continue
		}
		if mh, ok := s.cluster.store.TakeMember(id); ok {
			info := mh.Info
			packages = append(packages, protocol.TakeoverBody{
				Key: grouplog.MemberKey(id), Epoch: epoch, Member: &info, Token: mh.Token,
			})
		}
	}
	for _, gid := range groups {
		packages = append(packages, s.liveGroupTakeover(gid, epoch))
	}
	for _, id := range members {
		packages = append(packages, s.liveMemberTakeover(id, epoch))
	}

	unfreeze := func() {
		s.cluster.mu.Lock()
		for _, gid := range groups {
			delete(s.cluster.migrating, gid)
		}
		for _, id := range members {
			delete(s.cluster.migrating, grouplog.MemberKey(id))
		}
		s.cluster.mu.Unlock()
	}

	if len(packages) == 0 {
		unfreeze()
		reply(nil)
		return
	}

	ship, err := s.cluster.cfg.Network.Dial(body.Addr)
	if err != nil {
		// The recovering node vanished again: abort, keep serving.
		unfreeze()
		reply(nil)
		return
	}
	defer ship.Close()
	shipped := make([]string, 0, len(packages))
	for i := range packages {
		tb := packages[i]
		if err := ship.Send(cluster.WrapForward(protocol.ForwardBody{
			Kind: protocol.ForwardTakeover, Takeover: &tb,
		})); err != nil {
			unfreeze()
			reply(nil)
			return
		}
		shipped = append(shipped, tb.Key)
	}
	// Barrier: the receiver acks this marker only after processing every
	// package that preceded it on this in-order connection.
	barrierID := s.cluster.acks.NextID()
	if err := ship.Send(cluster.WrapForward(protocol.ForwardBody{
		Kind: protocol.ForwardMigrated, ID: barrierID, From: s.cluster.selfAddr(), Groups: shipped,
	})); err != nil {
		unfreeze()
		reply(nil)
		return
	}
	for {
		wire, err := ship.Recv()
		if err != nil {
			unfreeze()
			reply(nil)
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil || msg.Type != protocol.TForward {
			continue
		}
		var ack protocol.ForwardBody
		if msg.Into(&ack) == nil && ack.Kind == protocol.ForwardAck && ack.ID == barrierID {
			break
		}
	}

	// Handoff confirmed: drop the local claim. The residual registry and
	// log entries are harmless — the gate answers node_moved for these
	// keys now, and a future re-adoption installs idempotently on top
	// (AppendRaw dedups, CreateGroup tolerates duplicates).
	s.cluster.mu.Lock()
	for _, gid := range groups {
		delete(s.cluster.adopted, gid)
		delete(s.cluster.migrating, gid)
		s.cluster.served.Delete(gid)
	}
	for _, id := range members {
		delete(s.cluster.adoptedMembers, id)
		delete(s.cluster.migrating, grouplog.MemberKey(id))
		s.cluster.homes.Delete(id)
	}
	s.cluster.mu.Unlock()
	reply(shipped)
}

// installTakeover installs one migration package: into the live planes
// when this node natively owns the key (the recovering primary), into
// the replica store otherwise (a successor restocking its standby
// copy). Stale epochs are discarded.
func (s *Server) installTakeover(tb protocol.TakeoverBody) {
	if tb.Key == "" || !s.cluster.store.AdmitEpoch(tb.Key, tb.Epoch) {
		return
	}
	s.cluster.topo.AdvanceEpoch(tb.Epoch)
	if strings.HasPrefix(tb.Key, "~") {
		id := strings.TrimPrefix(tb.Key, "~")
		native := s.cluster.topo.Primary(cluster.HomeKey(id)) == s.cluster.cfg.Self
		if !native {
			if tb.Member != nil {
				s.cluster.store.ApplyMemberHome(*tb.Member, tb.Token)
			}
			if len(tb.Events) > 0 {
				events, head := wireEventsToReplica(tb.Events)
				s.cluster.store.Install(tb.Key, cluster.GroupReplica{Events: events, Head: head})
			}
			return
		}
		if tb.Member != nil {
			_ = s.registry.EnsureMember(memberFromInfo(*tb.Member))
			s.walMemberHome(memberFromInfo(*tb.Member), tb.Token)
		}
		s.bumpNextID(id)
		if tb.Token != "" {
			s.mu.Lock()
			s.tokens[tb.Token] = group.MemberID(id)
			s.tokenOf[group.MemberID(id)] = tb.Token
			s.mu.Unlock()
		}
		lg := s.logs.Get(tb.Key)
		for _, e := range tb.Events {
			lg.AppendRaw(e.GSeq, e.CSeq, e.Class, e.State, e.WireBytes())
			s.walEvent(tb.Key, e.GSeq, e.CSeq, e.Class, e.State, e.WireBytes())
		}
		return
	}
	events, head := wireEventsToReplica(tb.Events)
	rep := cluster.GroupReplica{
		Chair: tb.Chair, Members: tb.Members, Floor: tb.Floor,
		Events: events, Head: head, BoardHead: tb.BoardHead,
	}
	if s.cluster.topo.Primary(tb.Key) != s.cluster.cfg.Self {
		s.cluster.store.Install(tb.Key, rep)
		return
	}
	s.installGroupReplica(tb.Key, rep)
}
