package server

import (
	"fmt"

	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// onBackfill is the single repair path of the delivery plane: a client
// that saw a hole in a log's per-class CSeq stream — or learned from the
// heads digest that it is behind, or just reconnected with its
// last-seen sequence numbers — asks for the suffix past its per-class
// positions. The server re-sends the retained logged events verbatim
// (their sequence numbers already stamped), filtered to the classes the
// session subscribes to, or one compact snapshot when a needed class no
// longer connects to anything the compacted log retains. An empty Group
// names the sender's own member event log (invitations). The request is
// usually fired without a Seq from the client's read loop; it is acked
// only when one is present.
//
// Backfill sends ride the same droppable per-session queue as live
// traffic: if the suffix itself overflows the client's queue, the
// heads digest keeps showing the client behind and its next paced ask
// retries — repair never blocks a handler on a slow consumer.
func (s *Server) onBackfill(sess *session, msg protocol.Message) {
	var body protocol.BackfillBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}

	if body.Group == "" {
		s.backfillMemberLog(sess, body.Afters)
	} else {
		// Logs are group-private, like the boards they carry: only
		// members may read a group's event stream.
		if !s.registry.IsMember(body.Group, sess.member.ID) {
			s.replyErr(sess, msg.Seq, "not_member", fmt.Errorf("server: %s not in %q", sess.member.ID, body.Group))
			return
		}
		s.backfillGroupLog(sess, body.Group, body.Afters, body.BoardSeq)
	}
	if msg.Seq != 0 {
		s.replyAck(sess, msg.Seq, protocol.BackfillBody{Group: body.Group, Afters: body.Afters})
	}
}

func (s *Server) backfillGroupLog(sess *session, groupID string, afters map[string]int64, boardSeq int64) {
	lg, ok := s.logs.Peek(groupID)
	if !ok {
		return
	}
	if _, complete := lg.Replay(afters, sess.wantsClass, func(wire []byte) {
		s.sendWire(sess, wireFor(sess, wire))
	}); !complete {
		s.sendSnapshot(sess, groupID, boardSeq)
		return
	}
	// Queue slots are redacted from the retained (canonical) event
	// bytes, so a replayed suffix can tell the requester the queue moved
	// but not where they now stand — worse, a replayed restatement
	// carries position 0 and would convince a still-queued requester it
	// left the queue; restate their own slot directly when they hold
	// one. The nudge is unlogged (CSeq 0) and personalized — the same
	// shape a live slot push has.
	s.nudgeQueueSlot(sess, groupID)
}

// nudgeQueueSlot sends one unlogged, personalized queue_position event
// when the session's member currently occupies a queue slot. It rides
// sendReliable: backfill runs on the requester's own handler goroutine,
// and the slot correction must not be droppable — nothing else (no
// hole, no digest mismatch) would ever flag its loss.
func (s *Server) nudgeQueueSlot(sess *session, groupID string) {
	if !sess.wantsClass(protocol.ClassFloor) {
		return
	}
	mode, holder, queue, _, _ := s.floorCtl.StateSnapshot(groupID)
	pos := 0
	for i, m := range queue {
		if m == sess.member.ID {
			pos = i + 1
			break
		}
	}
	if pos == 0 {
		return
	}
	note := protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{
		Mode:          mode.String(),
		Holder:        string(holder),
		Member:        string(sess.member.ID),
		Event:         "queue_position",
		QueuePosition: pos,
		QueueLen:      len(queue),
	})
	note.Group = groupID
	s.sendReliable(sess, note)
}

func (s *Server) backfillMemberLog(sess *session, afters map[string]int64) {
	lg, ok := s.logs.Peek(grouplog.MemberKey(string(sess.member.ID)))
	if !ok {
		return
	}
	heads, complete := lg.Replay(afters, sess.wantsClass, func(wire []byte) {
		s.sendWire(sess, wireFor(sess, wire))
	})
	if complete {
		return
	}
	// The invitation log was compacted past the caller: reconcile from
	// the registry's pending set instead of replaying events.
	body := protocol.SnapshotBody{Seq: lg.Head(), ClassSeqs: heads}
	for _, inv := range s.registry.PendingInvites(sess.member.ID) {
		body.Invites = append(body.Invites, protocol.InviteEventBody{
			InviteID: inv.ID, Group: inv.Group, From: string(inv.From),
		})
	}
	s.sendMsg(sess, protocol.MustNew(protocol.TSnapshot, body))
}

// sendSnapshot pushes one group's authoritative state to a session: the
// per-class log positions it covers through, the floor (mode, holder,
// the recipient's own queue slot and the public queue length, pin), the
// suspended set, and the board suffix after boardSeq. It is the
// convergence payload for late joiners (boardSeq 0 → whole board),
// explicit TReplay, and backfills whose needed classes no longer
// connect. The log heads are read before the state, so a concurrent
// transition can at worst be reflected in the state and then
// re-delivered as a live event — every snapshot field is absolute and
// every logged event idempotent, so over-delivery is harmless, whereas
// the opposite order could stamp heads whose effect the snapshot
// missed. Like live floor events, the snapshot never carries another
// member's queue slot: it is built per recipient.
func (s *Server) sendSnapshot(sess *session, groupID string, boardSeq int64) {
	lg := s.logs.Get(groupID)
	head := lg.Head()
	classSeqs := lg.ClassHeads()
	mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(groupID)
	level := resource.Normal
	if s.cfg.Monitor != nil {
		level = s.cfg.Monitor.Level()
	}
	body := protocol.SnapshotBody{
		Seq:       head,
		ClassSeqs: classSeqs,
		Mode:      mode.String(),
		Holder:    string(holder),
		QueueLen:  len(queue),
		Level:     level.String(),
		Pinned:    pinned,
	}
	for i, m := range queue {
		if m == sess.member.ID {
			body.QueuePos = i + 1
			break
		}
	}
	for _, m := range suspended {
		body.Suspended = append(body.Suspended, string(m))
	}
	gb := s.board(groupID)
	for _, op := range gb.board.Since(boardSeq) {
		body.Board = append(body.Board, protocol.SequencedBody{
			Seq: op.Seq, Author: op.Author, Kind: op.Kind.String(), Data: op.Data,
		})
	}
	msg := protocol.MustNew(protocol.TSnapshot, body)
	msg.Group = groupID
	s.sendMsg(sess, msg)
}
