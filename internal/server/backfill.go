package server

import (
	"fmt"

	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// onBackfill is the single repair path of the delivery plane: a client
// that saw a hole in a log's GSeq stream — or learned from the heads
// digest that it is behind, or just reconnected with its last-seen
// sequence numbers — asks for the suffix after its position. The server
// re-sends the retained logged events verbatim (their GSeq already
// stamped), or one compact snapshot when the ring has wrapped past the
// requested position. An empty Group names the sender's own member
// event log (invitations). The request is usually fired without a Seq
// from the client's read loop; it is acked only when one is present.
//
// Backfill sends ride the same droppable per-session queue as live
// traffic: if the suffix itself overflows the client's queue, the
// heads digest keeps showing the client behind and its next paced ask
// retries — repair never blocks a handler on a slow consumer.
func (s *Server) onBackfill(sess *session, msg protocol.Message) {
	var body protocol.BackfillBody
	if err := msg.Into(&body); err != nil {
		s.replyErr(sess, msg.Seq, "bad_body", err)
		return
	}

	if body.Group == "" {
		s.backfillMemberLog(sess, body.After)
	} else {
		// Logs are group-private, like the boards they carry: only
		// members may read a group's event stream.
		if !s.registry.IsMember(body.Group, sess.member.ID) {
			s.replyErr(sess, msg.Seq, "not_member", fmt.Errorf("server: %s not in %q", sess.member.ID, body.Group))
			return
		}
		s.backfillGroupLog(sess, body.Group, body.After, body.BoardSeq)
	}
	if msg.Seq != 0 {
		s.replyAck(sess, msg.Seq, protocol.BackfillBody{Group: body.Group, After: body.After})
	}
}

func (s *Server) backfillGroupLog(sess *session, groupID string, after, boardSeq int64) {
	lg, ok := s.logs.Peek(groupID)
	if !ok {
		return
	}
	if _, complete := lg.Replay(after, func(_ int64, wire []byte) {
		s.sendWire(sess, wire)
	}); !complete {
		s.sendSnapshot(sess, groupID, boardSeq)
	}
}

func (s *Server) backfillMemberLog(sess *session, after int64) {
	lg, ok := s.logs.Peek(grouplog.MemberKey(string(sess.member.ID)))
	if !ok {
		return
	}
	head, complete := lg.Replay(after, func(_ int64, wire []byte) {
		s.sendWire(sess, wire)
	})
	if complete {
		return
	}
	// The invitation log wrapped: reconcile from the registry's pending
	// set instead of replaying events.
	body := protocol.SnapshotBody{Seq: head}
	for _, inv := range s.registry.PendingInvites(sess.member.ID) {
		body.Invites = append(body.Invites, protocol.InviteEventBody{
			InviteID: inv.ID, Group: inv.Group, From: string(inv.From),
		})
	}
	s.sendMsg(sess, protocol.MustNew(protocol.TSnapshot, body))
}

// sendSnapshot pushes one group's authoritative state to a session: the
// event-log position it covers through, the floor (mode, holder, queue,
// pin), the suspended set, and the board suffix after boardSeq. It is
// the convergence payload for late joiners (boardSeq 0 → whole board),
// explicit TReplay, and backfills whose suffix has left the ring. The
// log head is read before the state, so a concurrent transition can at
// worst be reflected in the state and then re-delivered as a live event
// — every snapshot field is absolute and every logged event idempotent,
// so over-delivery is harmless, whereas the opposite order could stamp
// a head whose effect the snapshot missed.
func (s *Server) sendSnapshot(sess *session, groupID string, boardSeq int64) {
	head := s.logs.Get(groupID).Head()
	mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(groupID)
	level := resource.Normal
	if s.cfg.Monitor != nil {
		level = s.cfg.Monitor.Level()
	}
	body := protocol.SnapshotBody{
		Seq:    head,
		Mode:   mode.String(),
		Holder: string(holder),
		Level:  level.String(),
		Pinned: pinned,
	}
	for _, m := range queue {
		body.Queue = append(body.Queue, string(m))
	}
	for _, m := range suspended {
		body.Suspended = append(body.Suspended, string(m))
	}
	gb := s.board(groupID)
	for _, op := range gb.board.Since(boardSeq) {
		body.Board = append(body.Board, protocol.SequencedBody{
			Seq: op.Seq, Author: op.Author, Kind: op.Kind.String(), Data: op.Data,
		})
	}
	msg := protocol.MustNew(protocol.TSnapshot, body)
	msg.Group = groupID
	s.sendMsg(sess, msg)
}
