package server

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/media"
	"dmps/internal/resource"
)

func videoSource(t *testing.T, units int) *media.SyntheticSource {
	t.Helper()
	src, err := media.NewSyntheticSource(media.Object{
		ID: "cam", Kind: media.Video, Duration: time.Duration(units) * 100 * time.Millisecond,
		Rate: 10, UnitBytes: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestMediaStreamReachesGroup(t *testing.T) {
	l := newLab(t)
	speaker := l.dial("Speaker", "chair", 5)
	listener := l.dial("Listener", "participant", 2)
	_ = speaker.Join("class")
	_ = listener.Join("class")

	src := videoSource(t, 5)
	sent, err := speaker.StreamSource("class", src, false)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 5 {
		t.Errorf("sent = %d", sent)
	}
	waitFor(t, "units at listener", func() bool {
		return listener.MediaStats("class")["cam"].Units == 5
	})
	stat := listener.MediaStats("class")["cam"]
	if stat.Bytes != 5*1200 {
		t.Errorf("bytes = %d", stat.Bytes)
	}
	if stat.LastSeq != 4 {
		t.Errorf("last seq = %d", stat.LastSeq)
	}
}

func TestMediaStreamGatedByFloor(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	student := l.dial("Student", "participant", 2)
	_ = teacher.Join("class")
	_ = student.Join("class")
	// Teacher takes equal control: the student's microphone is cut.
	if _, err := teacher.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	// With-ack send is denied explicitly.
	unit := media.Unit{ObjectID: "mic", Kind: media.Audio, Seq: 0, Bytes: 160}
	if err := student.SendMediaUnit("class", unit, true); !errors.Is(err, client.ErrDenied) {
		t.Errorf("muted ack send: %v", err)
	}
	// Fire-and-forget send vanishes silently: no unit reaches the teacher.
	if err := student.SendMediaUnit("class", unit, false); err != nil {
		t.Fatalf("fire-and-forget must not error: %v", err)
	}
	// The holder CAN stream.
	if err := teacher.SendMediaUnit("class", media.Unit{ObjectID: "cam", Kind: media.Video, Bytes: 1000}, true); err != nil {
		t.Fatalf("holder stream: %v", err)
	}
	waitFor(t, "teacher unit", func() bool {
		return student.MediaStats("class")["cam"].Units == 1
	})
	if teacher.MediaStats("class")["mic"].Units != 0 {
		t.Error("muted unit leaked to the group")
	}
}

func TestMediaStreamBlockedWhenSuspended(t *testing.T) {
	l := newLab(t)
	teacher := l.dial("Teacher", "chair", 5)
	carol := l.dial("Carol", "participant", 1)
	_ = teacher.Join("class")
	_ = carol.Join("class")
	// Degrade into [β, α): the next arbitration suspends carol.
	l.mon.Set(resourceVector(0.3))
	if _, err := teacher.RequestFloor("class", floor.FreeAccess, ""); err != nil {
		t.Fatal(err)
	}
	unit := media.Unit{ObjectID: "mic", Kind: media.Audio, Bytes: 160}
	if err := carol.SendMediaUnit("class", unit, true); !errors.Is(err, client.ErrDenied) {
		t.Errorf("suspended stream: %v", err)
	}
}

func TestMediaStreamPacedBySourceInterval(t *testing.T) {
	l := newLab(t)
	speaker := l.dial("Speaker", "chair", 5)
	_ = speaker.Join("class")
	// 3 units at 10 units/s: pacing sleeps 2×100ms between units.
	src, err := media.NewSyntheticSource(media.Object{
		ID: "cam", Kind: media.Video, Duration: 300 * time.Millisecond, Rate: 10, UnitBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := speaker.StreamSource("class", src, true); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Errorf("paced stream took %v, want ≥ ~200ms", elapsed)
	}
}

// resourceVector builds a uniform availability vector.
func resourceVector(v float64) resource.Vector {
	return resource.Vector{Network: v, CPU: v, Memory: v}
}
