package server

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
	"dmps/internal/transport"
)

// TestModeratedQueueEndToEndNetsim runs the full BFCP-style flow —
// student requests, chair approves, student receives the grant through
// Subscribe — over the simulated network.
func TestModeratedQueueEndToEndNetsim(t *testing.T) {
	net := netsim.New(21)
	runModeratedE2E(t, net, "mod:1")
}

// TestModeratedQueueEndToEndTCP runs the same flow over real loopback
// sockets — the cmd/dmps-server + cmd/dmps-client code path.
func TestModeratedQueueEndToEndTCP(t *testing.T) {
	runModeratedE2E(t, transport.TCP{}, "127.0.0.1:0")
}

func runModeratedE2E(t *testing.T, network transport.Network, addr string) {
	t.Helper()
	srv, err := New(Config{Network: network, Addr: addr, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	dial := func(name, role string, priority int) *client.Client {
		c, err := client.Dial(client.Config{
			Network: network, Addr: srv.Addr(),
			Name: name, Role: role, Priority: priority,
			Timeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatalf("Dial(%s): %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}
	teacher := dial("teacher", "chair", 5)
	student := dial("student", "participant", 2)
	for _, c := range []*client.Client{teacher, student} {
		if err := c.Join("seminar"); err != nil {
			t.Fatal(err)
		}
	}

	events := student.Subscribe(client.FloorEvents)

	// The student's request switches the group into moderated-queue mode
	// and parks them at position 1 — acked, not failed.
	dec, err := student.RequestFloor("seminar", floor.ModeratedQueue, "")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted || dec.QueuePosition != 1 {
		t.Fatalf("dec = %+v, want queued at 1", dec)
	}

	// Queued students may not deliver yet.
	if err := student.Chat("seminar", "premature"); err == nil {
		t.Fatal("queued student should not hold the message window")
	}

	// The chair approves; the floor is free, so the grant is immediate.
	adec, err := teacher.ApproveFloor("seminar", student.MemberID())
	if err != nil {
		t.Fatal(err)
	}
	if !adec.Granted || adec.Holder != student.MemberID() {
		t.Fatalf("approve dec = %+v", adec)
	}

	// The student's subscription delivers the queued → granted sequence.
	sawQueued, sawGranted := false, false
	deadline := time.After(5 * time.Second)
	for !sawGranted {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("event channel closed early")
			}
			if ev.Group != "seminar" || ev.Floor.Member != student.MemberID() {
				continue
			}
			switch ev.Floor.Event {
			case "queued":
				if ev.Floor.QueuePosition != 1 {
					t.Errorf("queued at %d, want 1", ev.Floor.QueuePosition)
				}
				sawQueued = true
			case "granted":
				if !sawQueued {
					t.Error("granted arrived before queued")
				}
				if ev.Floor.Holder != student.MemberID() {
					t.Errorf("granted holder = %q", ev.Floor.Holder)
				}
				sawGranted = true
			}
		case <-deadline:
			t.Fatalf("no grant event (queued=%v)", sawQueued)
		}
	}

	// Holding the floor, the student may now deliver; the queue slot is
	// cleared; polling accessors agree with the event stream.
	if err := student.Chat("seminar", "thanks!"); err != nil {
		t.Fatalf("granted student chat: %v", err)
	}
	if pos := student.QueuePosition("seminar"); pos != 0 {
		t.Errorf("QueuePosition = %d after grant", pos)
	}
	waitUntil(t, func() bool { return student.Holder("seminar") == student.MemberID() })
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
