package server

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
)

// newBackpressureLab builds a server with a tiny per-session queue so
// overflow is cheap to trigger deterministically.
func newBackpressureLab(t *testing.T, queueCap int, policy SlowConsumerPolicy) (*netsim.Net, *Server) {
	t.Helper()
	n := netsim.New(7)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
		SendQueueCap:  queueCap,
		SlowPolicy:    policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return n, srv
}

func dialFrom(t *testing.T, n *netsim.Net, host, name string) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Config{
		Network:  n.From(host),
		Addr:     "server:1",
		Name:     name,
		Role:     "participant",
		Priority: 2,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("Dial(%s): %v", name, err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestSlowConsumerDoesNotBlockFloorGrants pins the core guarantee of the
// async broadcast plane: a client that stops reading (its link stalls,
// as when a TCP socket buffer fills) must not delay anyone else's floor
// grants, and its backpressure must be observable — at the server via
// SessionStats and at every client via the lights broadcast.
func TestSlowConsumerDoesNotBlockFloorGrants(t *testing.T) {
	n, srv := newBackpressureLab(t, 8, DropNewest)
	slow := dialFrom(t, n, "slowhost", "slow")
	fast1 := dialFrom(t, n, "fasthost1", "fast1")
	fast2 := dialFrom(t, n, "fasthost2", "fast2")
	for _, c := range []*client.Client{slow, fast1, fast2} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	events := fast2.Subscribe(client.FloorEvents)

	// The slow client's link freezes: server→slow sends now block, as a
	// full kernel buffer would.
	n.Stall("server", "slowhost", true)
	defer n.Stall("server", "slowhost", false)

	// Thirty grant/release cycles fan 60 floor events to a 3-member
	// group; the slow session's 8-slot queue must overflow while the
	// fast members keep getting prompt grants.
	const cycles = 30
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if _, err := fast1.RequestFloor("class", floor.EqualControl, ""); err != nil {
			t.Fatalf("cycle %d: request blocked by slow consumer: %v", i, err)
		}
		if err := fast1.ReleaseFloor("class"); err != nil {
			t.Fatalf("cycle %d: release blocked by slow consumer: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("floor cycles took %v with one stalled member", elapsed)
	}

	// The other members' fan-out stayed live: fast2 saw grant events.
	grants := 0
	timeout := time.After(3 * time.Second)
	for grants == 0 {
		select {
		case ev := <-events:
			if ev.Floor.Event == "granted" {
				grants++
			}
		case <-timeout:
			t.Fatal("no grant event reached the healthy subscriber")
		}
	}

	// The slow session's drop counter is visible server-side...
	stats := srv.SessionStats()[slow.MemberID()]
	if stats.QueueCap != 8 {
		t.Fatalf("QueueCap = %d, want 8", stats.QueueCap)
	}
	if stats.Drops == 0 {
		t.Fatal("stalled session recorded no drops after 60 fanned-out events")
	}
	// ...and client-side, pushed with the lights table.
	waitFor(t, "backpressure on the lights path", func() bool {
		return fast1.Backpressure()[slow.MemberID()].Drops > 0
	})

	// The slow member stays connected under DropNewest: the session is
	// degraded (red light once probes time out), never torn down.
	if _, ok := srv.SessionStats()[slow.MemberID()]; !ok {
		t.Fatal("DropNewest policy must keep the slow session")
	}

	// State repair after the link heals: while slow's queue is still
	// jammed, fast1 takes the floor (the grant event drops), posts a
	// board line (the tail op drops — no later event would ever expose
	// the gap), and invites slow into a breakout (the invite drops).
	// Once the stall lifts, the heads digest on the lights broadcast
	// shows slow behind on both logs and its TBackfill asks must
	// recover all three.
	if _, err := fast1.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := fast1.Chat("class", "tail line"); err != nil {
		t.Fatal(err)
	}
	if err := fast1.Join("breakout"); err != nil {
		t.Fatal(err)
	}
	if _, err := fast1.Invite("breakout", slow.MemberID()); err != nil {
		t.Fatal(err)
	}
	n.Stall("server", "slowhost", false)
	waitFor(t, "floor backfill after backpressure drops", func() bool {
		return slow.Holder("class") == fast1.MemberID()
	})
	waitFor(t, "board backfill after backpressure drops", func() bool {
		return slow.Board("class").Seq() == 1
	})
	waitFor(t, "invitation backfill after backpressure drops", func() bool {
		return len(slow.PendingInvites()) == 1
	})
}

// TestSlowConsumerDisconnectPolicy covers the stricter policy: the first
// overflow tears the slow session down and its light goes red.
func TestSlowConsumerDisconnectPolicy(t *testing.T) {
	n, srv := newBackpressureLab(t, 4, Disconnect)
	slow := dialFrom(t, n, "slowhost", "slow")
	fast := dialFrom(t, n, "fasthost1", "fast")
	for _, c := range []*client.Client{slow, fast} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	n.Stall("server", "slowhost", true)
	defer n.Stall("server", "slowhost", false)

	for i := 0; i < 20; i++ {
		if _, err := fast.RequestFloor("class", floor.EqualControl, ""); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := fast.ReleaseFloor("class"); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	waitFor(t, "slow session disconnected", func() bool {
		return srv.Lights()[slow.MemberID()] == Red
	})
	if drops := srv.SessionStats()[slow.MemberID()].Drops; drops == 0 {
		t.Fatal("disconnect policy fired without a recorded drop")
	}
	// The healthy member is untouched.
	if _, err := fast.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatalf("healthy member affected: %v", err)
	}
}
