package resource

import (
	"errors"
	"testing"
	"time"
)

func TestVectorClamp(t *testing.T) {
	v := Vector{Network: -0.5, CPU: 1.5, Memory: 0.3}.Clamp()
	if v.Network != 0 || v.CPU != 1 || v.Memory != 0.3 {
		t.Errorf("Clamp = %+v", v)
	}
}

func TestVectorArithmetic(t *testing.T) {
	const eps = 1e-9
	near := func(a, b float64) bool { d := a - b; return d < eps && d > -eps }
	a := Vector{Network: 0.8, CPU: 0.6, Memory: 0.4}
	b := Vector{Network: 0.1, CPU: 0.2, Memory: 0.3}
	sum := a.Add(b)
	if !near(sum.Network, 0.9) || !near(sum.CPU, 0.8) || !near(sum.Memory, 0.7) {
		t.Errorf("Add = %+v", sum)
	}
	diff := a.Sub(b)
	if !near(diff.Network, 0.7) || !near(diff.CPU, 0.4) || !near(diff.Memory, 0.1) {
		t.Errorf("Sub = %+v", diff)
	}
}

func TestVectorBind(t *testing.T) {
	v := Vector{Network: 0.2, CPU: 0.9, Memory: 0.5}
	if got := v.Bind(NetworkBound); got != 0.2 {
		t.Errorf("NetworkBound = %v", got)
	}
	if got := v.Bind(CPUBound); got != 0.9 {
		t.Errorf("CPUBound = %v", got)
	}
	if got := v.Bind(MemoryBound); got != 0.5 {
		t.Errorf("MemoryBound = %v", got)
	}
	if got := v.Bind(MinBound); got != 0.2 {
		t.Errorf("MinBound = %v", got)
	}
}

func TestFactorLevelStrings(t *testing.T) {
	if NetworkBound.String() != "NETWORK-BOUND" || MinBound.String() != "MIN-BOUND" {
		t.Error("factor strings")
	}
	if Normal.String() != "normal" || Degraded.String() != "degraded" || Critical.String() != "critical" {
		t.Error("level strings")
	}
	if Factor(99).String() == "" || Level(99).String() == "" {
		t.Error("unknown enums should still render")
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Thresholds{
		{Alpha: 0.2, Beta: 0.5}, // α < β violates the spec's a > b
		{Alpha: 0.5, Beta: 0.5}, // equal
		{Alpha: 1.5, Beta: 0.1}, // out of range
		{Alpha: 0.5, Beta: -0.1},
	}
	for i, th := range bad {
		if err := th.Validate(); !errors.Is(err, ErrThresholds) {
			t.Errorf("bad[%d] err = %v", i, err)
		}
	}
}

func TestClassifyRegimes(t *testing.T) {
	th := Thresholds{Alpha: 0.5, Beta: 0.2}
	cases := []struct {
		avail float64
		want  Level
	}{
		{1.0, Normal}, {0.5, Normal}, {0.49, Degraded},
		{0.2, Degraded}, {0.19, Critical}, {0, Critical},
	}
	for _, c := range cases {
		if got := th.Classify(c.avail); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.avail, got, c.want)
		}
	}
}

func TestMonitorLifecycle(t *testing.T) {
	m, err := New(MinBound, Thresholds{Alpha: 0.5, Beta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Level() != Normal || m.Availability() != 1 {
		t.Errorf("fresh monitor: %v %v", m.Level(), m.Availability())
	}
	m.Consume(Vector{Network: 0.6, CPU: 0.3, Memory: 0.1})
	if got := m.Availability(); got != 0.4 {
		t.Errorf("after consume = %v, want 0.4 (network binds)", got)
	}
	if m.Level() != Degraded {
		t.Errorf("level = %v, want degraded", m.Level())
	}
	m.Consume(Vector{Network: 0.3})
	if m.Level() != Critical {
		t.Errorf("level = %v, want critical", m.Level())
	}
	m.Release(Vector{Network: 0.9, CPU: 0.3, Memory: 0.1})
	if m.Level() != Normal {
		t.Errorf("after release = %v", m.Level())
	}
	if m.Availability() != 1 {
		t.Errorf("release should clamp at 1: %v", m.Availability())
	}
}

func TestMonitorRejectsBadThresholds(t *testing.T) {
	if _, err := New(MinBound, Thresholds{Alpha: 0.1, Beta: 0.9}); !errors.Is(err, ErrThresholds) {
		t.Errorf("err = %v", err)
	}
}

func TestMonitorZeroValueUsable(t *testing.T) {
	var m Monitor
	if m.Availability() != 1 {
		t.Errorf("zero monitor availability = %v", m.Availability())
	}
	if m.Level() != Normal {
		t.Errorf("zero monitor level = %v", m.Level())
	}
	m.Set(Vector{Network: 0.1, CPU: 0.1, Memory: 0.1})
	if m.Level() != Critical {
		t.Errorf("after Set: %v", m.Level())
	}
	if th := m.Thresholds(); th != DefaultThresholds() {
		t.Errorf("thresholds = %+v", th)
	}
}

func TestProfileAt(t *testing.T) {
	p := Profile{Points: []ProfilePoint{
		{At: 0, Avail: Vector{Network: 1, CPU: 1, Memory: 1}},
		{At: 10 * time.Second, Avail: Vector{Network: 0.4, CPU: 0.4, Memory: 0.4}},
		{At: 20 * time.Second, Avail: Vector{Network: 0.1, CPU: 0.1, Memory: 0.1}},
	}}
	if got := p.At(5 * time.Second).Network; got != 1 {
		t.Errorf("t=5s: %v", got)
	}
	if got := p.At(10 * time.Second).Network; got != 0.4 {
		t.Errorf("t=10s: %v", got)
	}
	if got := p.At(15 * time.Second).Network; got != 0.4 {
		t.Errorf("t=15s: %v", got)
	}
	if got := p.At(25 * time.Second).Network; got != 0.1 {
		t.Errorf("t=25s: %v", got)
	}
	var empty Profile
	if got := empty.At(time.Hour).CPU; got != 1 {
		t.Errorf("empty profile should be full availability: %v", got)
	}
}

func TestRampDown(t *testing.T) {
	p := RampDown(10*time.Second, 5, 0.2)
	if len(p.Points) != 6 {
		t.Fatalf("points = %d", len(p.Points))
	}
	if got := p.At(0).Network; got != 1 {
		t.Errorf("start = %v", got)
	}
	if got := p.At(10 * time.Second).Network; got < 0.19 || got > 0.21 {
		t.Errorf("end = %v, want ~0.2", got)
	}
	mid := p.At(5 * time.Second).Network
	if mid <= 0.2 || mid >= 1 {
		t.Errorf("mid = %v, want strictly between", mid)
	}
	// Degenerate parameters.
	p2 := RampDown(time.Second, 0, -1)
	if len(p2.Points) != 2 {
		t.Errorf("degenerate points = %d", len(p2.Points))
	}
	if got := p2.At(time.Second).CPU; got != 0 {
		t.Errorf("floor clamped = %v", got)
	}
}
