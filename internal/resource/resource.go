// Package resource implements the Z-specification resource model of the
// paper's floor control mechanism:
//
//	Resource        == Network × CPU × Memory        (REAL components)
//	Policy-Factors  ::= NETWORK-BOUND | CPU-BOUND | MEMORY-BOUND
//	α, β : REAL  with  α > β
//
// α is "the basic system resource available"; β is "the minimal system
// resource available; α must be greater than β so that different levels of
// treatment are used when the source is not sufficient". Availability ≥ α
// is the normal regime; [β, α) triggers Media-Suspend of the
// lowest-priority member; < β aborts arbitration.
package resource

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Factor selects which resource component binds the availability
// computation (the Z spec's Policy-Factors).
type Factor int

const (
	// NetworkBound uses the network component as the binding resource.
	NetworkBound Factor = iota + 1
	// CPUBound uses the CPU component.
	CPUBound
	// MemoryBound uses the memory component.
	MemoryBound
	// MinBound uses the minimum across components (conservative policy,
	// the default when no single factor dominates).
	MinBound
)

// String implements fmt.Stringer.
func (f Factor) String() string {
	switch f {
	case NetworkBound:
		return "NETWORK-BOUND"
	case CPUBound:
		return "CPU-BOUND"
	case MemoryBound:
		return "MEMORY-BOUND"
	case MinBound:
		return "MIN-BOUND"
	default:
		return fmt.Sprintf("Factor(%d)", int(f))
	}
}

// Vector is the Resource triple. Components are fractions of capacity
// available in [0, 1]; 1 means fully free.
type Vector struct {
	Network float64
	CPU     float64
	Memory  float64
}

// Clamp returns the vector with each component clamped to [0, 1].
func (v Vector) Clamp() Vector {
	c := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return Vector{Network: c(v.Network), CPU: c(v.CPU), Memory: c(v.Memory)}
}

// Sub returns v − u component-wise (not clamped).
func (v Vector) Sub(u Vector) Vector {
	return Vector{Network: v.Network - u.Network, CPU: v.CPU - u.CPU, Memory: v.Memory - u.Memory}
}

// Add returns v + u component-wise (not clamped).
func (v Vector) Add(u Vector) Vector {
	return Vector{Network: v.Network + u.Network, CPU: v.CPU + u.CPU, Memory: v.Memory + u.Memory}
}

// Min returns the smallest component.
func (v Vector) Min() float64 {
	m := v.Network
	if v.CPU < m {
		m = v.CPU
	}
	if v.Memory < m {
		m = v.Memory
	}
	return m
}

// Bind reduces the vector to the scalar availability under the factor.
func (v Vector) Bind(f Factor) float64 {
	switch f {
	case NetworkBound:
		return v.Network
	case CPUBound:
		return v.CPU
	case MemoryBound:
		return v.Memory
	default:
		return v.Min()
	}
}

// Level classifies availability against the α/β thresholds.
type Level int

const (
	// Normal: availability ≥ α; all requested media can be granted.
	Normal Level = iota + 1
	// Degraded: β ≤ availability < α; the lowest-priority member's media
	// are suspended (Media-Suspend).
	Degraded
	// Critical: availability < β; arbitration aborts (Abort-Arbitrate).
	Critical
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Normal:
		return "normal"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ErrThresholds is returned when α ≤ β or the values fall outside [0, 1].
var ErrThresholds = errors.New("resource: thresholds require 0 ≤ β < α ≤ 1")

// Thresholds holds the α/β pair of the Z specification.
type Thresholds struct {
	Alpha float64 // basic system resource available
	Beta  float64 // minimal system resource available
}

// DefaultThresholds matches the regimes used by the experiments:
// degrade below 50% availability, abort below 15%.
func DefaultThresholds() Thresholds { return Thresholds{Alpha: 0.50, Beta: 0.15} }

// Validate enforces α > β as the spec's global constraint requires.
func (t Thresholds) Validate() error {
	if !(t.Beta >= 0 && t.Beta < t.Alpha && t.Alpha <= 1) {
		return fmt.Errorf("%w: α=%v β=%v", ErrThresholds, t.Alpha, t.Beta)
	}
	return nil
}

// Classify maps a scalar availability to its regime.
func (t Thresholds) Classify(avail float64) Level {
	switch {
	case avail >= t.Alpha:
		return Normal
	case avail >= t.Beta:
		return Degraded
	default:
		return Critical
	}
}

// Monitor tracks the host's current resource availability. It is safe for
// concurrent use. The zero value reports full availability under MinBound
// with DefaultThresholds; use New to configure.
type Monitor struct {
	mu         sync.Mutex
	avail      Vector
	factor     Factor
	thresholds Thresholds
	inited     bool
}

// New returns a monitor starting at full availability.
func New(factor Factor, th Thresholds) (*Monitor, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{
		avail:      Vector{Network: 1, CPU: 1, Memory: 1},
		factor:     factor,
		thresholds: th,
		inited:     true,
	}, nil
}

func (m *Monitor) initLocked() {
	if !m.inited {
		m.avail = Vector{Network: 1, CPU: 1, Memory: 1}
		m.factor = MinBound
		m.thresholds = DefaultThresholds()
		m.inited = true
	}
}

// Set replaces the availability vector (clamped to [0,1]).
func (m *Monitor) Set(v Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	m.avail = v.Clamp()
}

// Consume subtracts a demand from availability (clamped at 0); Release
// gives it back (clamped at 1).
func (m *Monitor) Consume(v Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	m.avail = m.avail.Sub(v).Clamp()
}

// Release returns previously consumed resources.
func (m *Monitor) Release(v Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	m.avail = m.avail.Add(v).Clamp()
}

// Vector returns the current availability vector.
func (m *Monitor) Vector() Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	return m.avail
}

// Availability returns the scalar availability under the monitor's factor.
func (m *Monitor) Availability() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	return m.avail.Bind(m.factor)
}

// Level classifies the current availability.
func (m *Monitor) Level() Level {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	return m.thresholds.Classify(m.avail.Bind(m.factor))
}

// Status is one consistent observation of the monitor: the availability
// vector, its scalar binding, and the α/β classification — taken under a
// single lock acquisition so arbitration and reporting agree.
type Status struct {
	Vector       Vector
	Availability float64
	Level        Level
	Thresholds   Thresholds
}

// Snapshot returns a consistent Status. Callers that need both the level
// and the scalar (the floor controller, the status loop) should prefer it
// over separate Level/Availability calls, which may interleave with Set.
func (m *Monitor) Snapshot() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	avail := m.avail.Bind(m.factor)
	return Status{
		Vector:       m.avail,
		Availability: avail,
		Level:        m.thresholds.Classify(avail),
		Thresholds:   m.thresholds,
	}
}

// Thresholds returns the configured α/β pair.
func (m *Monitor) Thresholds() Thresholds {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	return m.thresholds
}

// ProfilePoint is one step of a scripted load profile.
type ProfilePoint struct {
	At    time.Duration // offset from profile start
	Avail Vector
}

// Profile is a piecewise-constant scripted availability trace used by the
// degradation experiments (the stand-in for real host probes; see
// DESIGN.md substitutions).
type Profile struct {
	Points []ProfilePoint
}

// At returns the availability vector in effect at offset d: the last point
// at or before d, or full availability before the first point.
func (p Profile) At(d time.Duration) Vector {
	current := Vector{Network: 1, CPU: 1, Memory: 1}
	for _, pt := range p.Points {
		if pt.At > d {
			break
		}
		current = pt.Avail
	}
	return current
}

// RampDown builds a profile that degrades linearly from full availability
// to floor over total time in steps equal intervals (all components move
// together). Useful for sweeping across α and β.
func RampDown(total time.Duration, steps int, floor float64) Profile {
	if steps < 1 {
		steps = 1
	}
	if floor < 0 {
		floor = 0
	}
	var p Profile
	for i := 0; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		avail := 1 - frac*(1-floor)
		p.Points = append(p.Points, ProfilePoint{
			At:    time.Duration(frac * float64(total)),
			Avail: Vector{Network: avail, CPU: avail, Memory: avail},
		})
	}
	return p
}
