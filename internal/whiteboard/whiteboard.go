// Package whiteboard implements the shared message window and whiteboard
// of the DMPS communication windows (paper Figure 2): a server-sequenced
// operation log with idempotent application and replay for late joiners.
// The server assigns each accepted operation a sequence number, which
// makes every client's view converge to the same order regardless of
// client clocks — one of the ablations EXPERIMENTS.md reports.
package whiteboard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// OpKind classifies a whiteboard operation.
type OpKind int

const (
	// Draw adds a stroke/annotation (payload is the stroke data).
	Draw OpKind = iota + 1
	// Text posts a message-window line.
	Text
	// Clear wipes the board (the teacher's eraser).
	Clear
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case Draw:
		return "draw"
	case Text:
		return "text"
	case Clear:
		return "clear"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ParseOpKind resolves an operation kind's wire name ("draw", "text",
// "clear") — the inverse of OpKind.String, shared by the server and the
// command-line tools.
func ParseOpKind(s string) (OpKind, bool) {
	switch s {
	case "draw":
		return Draw, true
	case "text":
		return Text, true
	case "clear":
		return Clear, true
	default:
		return 0, false
	}
}

// Op is one sequenced operation.
type Op struct {
	// Seq is the server-assigned sequence number, 1-based and dense.
	Seq int64
	// Author is the member who performed the operation.
	Author string
	// Kind is the operation type.
	Kind OpKind
	// Data carries the stroke data or message text.
	Data string
}

// Validation errors.
var (
	// ErrBadOp is returned for invalid operations.
	ErrBadOp = errors.New("whiteboard: invalid operation")
	// ErrGap is returned when applying an out-of-order remote op whose
	// predecessors are missing.
	ErrGap = errors.New("whiteboard: sequence gap")
)

// boardChunk is the fixed capacity of each op-log block. The log is a
// list of full blocks plus one growing tail; blocks are never recopied,
// so the allocation cost of a long session is exactly the retained
// history, not the geometric-growth churn of a flat slice.
const boardChunk = 256

// Board is one group's shared board state. The server holds the
// authoritative Board (assigning sequence numbers via Append); clients
// hold replicas updated with Apply. It is safe for concurrent use.
type Board struct {
	mu sync.Mutex
	// chunks is the op log in sequence order. Every chunk except the
	// last holds exactly boardChunk ops, so op i lives at
	// chunks[i/boardChunk][i%boardChunk].
	chunks [][]Op
	count  int
	next   int64
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{next: 1} }

// appendLocked stores op at the tail of the chunked log. Callers hold mu.
func (b *Board) appendLocked(op Op) {
	if n := len(b.chunks); n == 0 || len(b.chunks[n-1]) == boardChunk {
		b.chunks = append(b.chunks, make([]Op, 0, boardChunk))
	}
	last := len(b.chunks) - 1
	b.chunks[last] = append(b.chunks[last], op)
	b.count++
}

// at returns op i (0-based position in the log). Callers hold mu.
func (b *Board) at(i int) Op {
	return b.chunks[i/boardChunk][i%boardChunk]
}

// Append assigns the next sequence number to the operation and stores it.
// Only the authoritative (server) board should call Append.
func (b *Board) Append(author string, kind OpKind, data string) (Op, error) {
	if author == "" {
		return Op{}, fmt.Errorf("%w: empty author", ErrBadOp)
	}
	if kind != Draw && kind != Text && kind != Clear {
		return Op{}, fmt.Errorf("%w: kind %d", ErrBadOp, int(kind))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	op := Op{Seq: b.next, Author: author, Kind: kind, Data: data}
	b.appendLocked(op)
	b.next++
	return op, nil
}

// Apply integrates a server-sequenced operation into a replica. It is
// idempotent: re-applying an op the replica already has is a no-op. A gap
// (op.Seq beyond next) returns ErrGap so the client can request replay.
func (b *Board) Apply(op Op) error {
	if op.Seq <= 0 || op.Author == "" {
		return fmt.Errorf("%w: %+v", ErrBadOp, op)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case op.Seq < b.next:
		return nil // duplicate delivery
	case op.Seq > b.next:
		return fmt.Errorf("%w: have %d, got %d", ErrGap, b.next-1, op.Seq)
	default:
		b.appendLocked(op)
		b.next++
		return nil
	}
}

// Converge integrates an operation from an AUTHORITATIVE catch-up
// payload (a snapshot, or a cluster takeover's replicated suffix):
// unlike Apply, a sequence jump is accepted — the source is the
// server's own board, so missing predecessors are not "loss to repair"
// but history the retention window no longer holds. The skipped range
// stays empty; replicas converge on the retained suffix. Duplicates
// remain no-ops.
func (b *Board) Converge(op Op) error {
	if op.Seq <= 0 || op.Author == "" {
		return fmt.Errorf("%w: %+v", ErrBadOp, op)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if op.Seq < b.next {
		return nil // duplicate delivery
	}
	b.appendLocked(op)
	b.next = op.Seq + 1
	return nil
}

// SkipTo advances the next sequence number past seq without recording
// operations — the cluster-takeover guard: when an adopting node's
// replicated suffix provably misses tail operations, the authoritative
// board must never re-mint sequence numbers clients already applied.
// The skipped range reads as an (empty) hole that Converge-applying
// replicas jump over. A seq at or below the current head is a no-op.
func (b *Board) SkipTo(seq int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq >= b.next {
		b.next = seq + 1
	}
}

// Seq returns the highest applied sequence number (0 when empty).
func (b *Board) Seq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next - 1
}

// Ops returns a copy of all operations in sequence order.
func (b *Board) Ops() []Op {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Op, 0, b.count)
	for _, c := range b.chunks {
		out = append(out, c...)
	}
	return out
}

// Since returns the operations with Seq > after, for replaying to late
// joiners or gap recovery.
func (b *Board) Since(after int64) []Op {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := sort.Search(b.count, func(i int) bool { return b.at(i).Seq > after })
	out := make([]Op, 0, b.count-idx)
	for i := idx; i < b.count; i++ {
		out = append(out, b.at(i))
	}
	return out
}

// Strokes returns the visible strokes: every Draw since the last Clear,
// in order.
func (b *Board) Strokes() []Op {
	b.mu.Lock()
	defer b.mu.Unlock()
	lastClear := -1
	for i := 0; i < b.count; i++ {
		if b.at(i).Kind == Clear {
			lastClear = i
		}
	}
	var out []Op
	for i := lastClear + 1; i < b.count; i++ {
		if op := b.at(i); op.Kind == Draw {
			out = append(out, op)
		}
	}
	return out
}

// Messages returns every message-window line in order, regardless of
// Clear (clearing affects the drawing surface, not the chat history).
func (b *Board) Messages() []Op {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Op
	for _, c := range b.chunks {
		for _, op := range c {
			if op.Kind == Text {
				out = append(out, op)
			}
		}
	}
	return out
}

// Render prints the message window as "author: text" lines — the view of
// the paper's Figure 2 message window.
func (b *Board) Render() string {
	var sb strings.Builder
	for _, op := range b.Messages() {
		fmt.Fprintf(&sb, "%s: %s\n", op.Author, op.Data)
	}
	return sb.String()
}

// Equal reports whether two boards hold identical op logs — the
// convergence check used by the replication tests.
func (b *Board) Equal(other *Board) bool {
	a, o := b.Ops(), other.Ops()
	if len(a) != len(o) {
		return false
	}
	for i := range a {
		if a[i] != o[i] {
			return false
		}
	}
	return true
}
