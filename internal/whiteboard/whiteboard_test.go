package whiteboard

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestAppendAssignsDenseSequence(t *testing.T) {
	b := NewBoard()
	for i := 1; i <= 5; i++ {
		op, err := b.Append("alice", Text, "hello")
		if err != nil {
			t.Fatal(err)
		}
		if op.Seq != int64(i) {
			t.Errorf("seq = %d, want %d", op.Seq, i)
		}
	}
	if b.Seq() != 5 {
		t.Errorf("Seq = %d", b.Seq())
	}
}

func TestAppendValidation(t *testing.T) {
	b := NewBoard()
	if _, err := b.Append("", Text, "x"); !errors.Is(err, ErrBadOp) {
		t.Errorf("empty author: %v", err)
	}
	if _, err := b.Append("a", OpKind(9), "x"); !errors.Is(err, ErrBadOp) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestApplyIdempotentAndOrdered(t *testing.T) {
	server := NewBoard()
	replica := NewBoard()
	var ops []Op
	for i := 0; i < 4; i++ {
		op, _ := server.Append("teacher", Draw, "stroke")
		ops = append(ops, op)
	}
	for _, op := range ops {
		if err := replica.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicates are no-ops.
	if err := replica.Apply(ops[1]); err != nil {
		t.Errorf("duplicate: %v", err)
	}
	if !replica.Equal(server) {
		t.Error("replica diverged")
	}
}

func TestApplyGapDetection(t *testing.T) {
	replica := NewBoard()
	if err := replica.Apply(Op{Seq: 3, Author: "a", Kind: Text, Data: "x"}); !errors.Is(err, ErrGap) {
		t.Errorf("gap: %v", err)
	}
	if err := replica.Apply(Op{Seq: 0, Author: "a", Kind: Text}); !errors.Is(err, ErrBadOp) {
		t.Errorf("bad seq: %v", err)
	}
}

func TestSinceReplay(t *testing.T) {
	server := NewBoard()
	for i := 0; i < 5; i++ {
		_, _ = server.Append("a", Text, "m")
	}
	replay := server.Since(2)
	if len(replay) != 3 || replay[0].Seq != 3 {
		t.Errorf("Since(2) = %v", replay)
	}
	if got := server.Since(5); len(got) != 0 {
		t.Errorf("Since(latest) = %v", got)
	}
	if got := server.Since(0); len(got) != 5 {
		t.Errorf("Since(0) = %v", got)
	}
}

func TestLateJoinerConvergesViaReplay(t *testing.T) {
	server := NewBoard()
	for i := 0; i < 10; i++ {
		_, _ = server.Append("teacher", Draw, "s")
	}
	late := NewBoard()
	for _, op := range server.Since(0) {
		if err := late.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if !late.Equal(server) {
		t.Error("late joiner diverged")
	}
}

func TestStrokesRespectClear(t *testing.T) {
	b := NewBoard()
	_, _ = b.Append("t", Draw, "s1")
	_, _ = b.Append("t", Text, "chat survives clear")
	_, _ = b.Append("t", Draw, "s2")
	_, _ = b.Append("t", Clear, "")
	_, _ = b.Append("t", Draw, "s3")
	strokes := b.Strokes()
	if len(strokes) != 1 || strokes[0].Data != "s3" {
		t.Errorf("strokes = %v", strokes)
	}
	if msgs := b.Messages(); len(msgs) != 1 {
		t.Errorf("messages = %v", msgs)
	}
}

func TestRender(t *testing.T) {
	b := NewBoard()
	_, _ = b.Append("alice", Text, "hi")
	_, _ = b.Append("bob", Text, "hello")
	out := b.Render()
	if !strings.Contains(out, "alice: hi") || !strings.Contains(out, "bob: hello") {
		t.Errorf("Render = %q", out)
	}
}

func TestConcurrentAppend(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := b.Append("w", Text, "m"); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ops := b.Ops()
	if len(ops) != 800 {
		t.Fatalf("ops = %d", len(ops))
	}
	// Sequence numbers must be dense 1..800 in order.
	for i, op := range ops {
		if op.Seq != int64(i+1) {
			t.Fatalf("seq[%d] = %d", i, op.Seq)
		}
	}
}

// TestServerOrderingBeatsClientTimestamps is the whiteboard ablation: two
// replicas receiving the same server-sequenced stream converge, whereas
// ordering by (simulated skewed) client timestamps diverges between
// observers. Here we verify the convergent half and that shuffled
// duplicate delivery cannot corrupt a replica protected by Apply's
// ordering contract.
func TestServerOrderingBeatsClientTimestamps(t *testing.T) {
	server := NewBoard()
	for i := 0; i < 20; i++ {
		author := "alice"
		if i%2 == 1 {
			author = "bob"
		}
		_, _ = server.Append(author, Text, "m")
	}
	stream := server.Since(0)
	rng := rand.New(rand.NewSource(5))
	replica := NewBoard()
	// Deliver with duplicates, in order with occasional replays (as a
	// reliable FIFO channel with reconnect-replay would).
	for _, op := range stream {
		if err := replica.Apply(op); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(3) == 0 {
			_ = replica.Apply(op) // duplicate
		}
	}
	if !replica.Equal(server) {
		t.Error("replica diverged under duplicate delivery")
	}
}

func TestOpKindString(t *testing.T) {
	if Draw.String() != "draw" || Text.String() != "text" || Clear.String() != "clear" {
		t.Error("kind strings")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Error("unknown kind")
	}
}
