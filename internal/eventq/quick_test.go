package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestQuickExecutionOrderMatchesTimestamps: random schedules always run
// in non-decreasing time order with FIFO ties.
func TestQuickExecutionOrderMatchesTimestamps(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 200; iter++ {
		q := New(origin)
		n := 1 + rng.Intn(50)
		type stamped struct {
			at  time.Duration
			seq int
		}
		var ran []stamped
		for i := 0; i < n; i++ {
			i := i
			at := time.Duration(rng.Intn(20)) * time.Millisecond
			q.After(at, func() {
				ran = append(ran, stamped{q.Now().Sub(origin), i})
			})
		}
		q.Drain()
		if len(ran) != n {
			t.Fatalf("iter %d: ran %d of %d", iter, len(ran), n)
		}
		if !sort.SliceIsSorted(ran, func(i, j int) bool {
			if ran[i].at != ran[j].at {
				return ran[i].at < ran[j].at
			}
			return ran[i].seq < ran[j].seq
		}) {
			t.Fatalf("iter %d: order violated: %v", iter, ran)
		}
	}
}

// TestQuickClockNeverRewinds: through random interleavings of scheduling
// and stepping, Now() is monotone.
func TestQuickClockNeverRewinds(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 100; iter++ {
		q := New(origin)
		last := q.Now()
		for op := 0; op < 100; op++ {
			if rng.Intn(2) == 0 {
				q.After(time.Duration(rng.Intn(10))*time.Millisecond, func() {})
			} else {
				q.Step()
			}
			if q.Now().Before(last) {
				t.Fatalf("iter %d: clock rewound", iter)
			}
			last = q.Now()
		}
	}
}

// TestQuickNestedSchedulingDrains: events that schedule further events
// (bounded depth) always drain completely.
func TestQuickNestedSchedulingDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 50; iter++ {
		q := New(origin)
		count := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			count++
			if depth <= 0 {
				return
			}
			kids := rng.Intn(3)
			for k := 0; k < kids; k++ {
				d := depth - 1
				q.After(time.Duration(rng.Intn(5))*time.Millisecond, func() { spawn(d) })
			}
		}
		q.After(0, func() { spawn(5) })
		q.Drain()
		if q.Pending() != 0 {
			t.Fatalf("iter %d: %d pending after drain", iter, q.Pending())
		}
		if count == 0 {
			t.Fatalf("iter %d: nothing ran", iter)
		}
	}
}
