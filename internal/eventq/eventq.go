// Package eventq provides a deterministic single-threaded discrete-event
// scheduler. Distributed experiments (clock skew, network jitter sweeps)
// run as simulations over an EventQueue instead of sleeping on wall-clock
// time, which keeps the test suite fast and exactly reproducible.
package eventq

import (
	"container/heap"
	"errors"
	"time"
)

// ErrPast is returned when scheduling before the current simulation time.
var ErrPast = errors.New("eventq: cannot schedule in the past")

// Event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-break: FIFO among equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Queue is a discrete-event scheduler. It is deliberately single-threaded:
// callbacks run inline in Run/Step on the caller's goroutine, and may
// schedule further events. Queue is not safe for concurrent use.
type Queue struct {
	now    time.Time
	nextID uint64
	heap   eventHeap
	ran    int
}

// New returns a queue whose clock starts at the given origin.
func New(origin time.Time) *Queue {
	return &Queue{now: origin}
}

// Now returns the current simulation time.
func (q *Queue) Now() time.Time { return q.now }

// Processed reports how many events have run.
func (q *Queue) Processed() int { return q.ran }

// Pending reports how many events are scheduled but not yet run.
func (q *Queue) Pending() int { return len(q.heap) }

// At schedules fn at the absolute simulation time at.
func (q *Queue) At(at time.Time, fn func()) error {
	if at.Before(q.now) {
		return ErrPast
	}
	q.nextID++
	heap.Push(&q.heap, &event{at: at, seq: q.nextID, fn: fn})
	return nil
}

// After schedules fn d after the current simulation time. Negative d is
// clamped to zero (run at the current instant, after already-queued events
// at the same time).
func (q *Queue) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	_ = q.At(q.now.Add(d), fn) // cannot be in the past by construction
}

// Step runs the single earliest event, advancing the clock to its time.
// It reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	ev := heap.Pop(&q.heap).(*event)
	q.now = ev.at
	q.ran++
	ev.fn()
	return true
}

// RunUntil executes events up to and including time t, leaving the clock at
// t. Events scheduled during execution are honoured if they fall within t.
func (q *Queue) RunUntil(t time.Time) {
	for len(q.heap) > 0 && !q.heap[0].at.After(t) {
		q.Step()
	}
	if t.After(q.now) {
		q.now = t
	}
}

// Run executes events until the queue drains or maxEvents have run.
// It returns the number of events executed.
func (q *Queue) Run(maxEvents int) int {
	ran := 0
	for ran < maxEvents && q.Step() {
		ran++
	}
	return ran
}

// Drain runs events until none remain. It panics after 10 million events to
// catch accidental infinite self-scheduling in tests; simulations that
// legitimately need more should call Run in a loop.
func (q *Queue) Drain() int {
	const hardStop = 10_000_000
	ran := q.Run(hardStop)
	if ran == hardStop && q.Pending() > 0 {
		panic("eventq: Drain exceeded 10M events; likely a self-scheduling loop")
	}
	return ran
}
