package eventq

import (
	"errors"
	"testing"
	"time"
)

var origin = time.Date(2001, 4, 16, 0, 0, 0, 0, time.UTC) // ICDCS 2001 week

func TestOrderingByTime(t *testing.T) {
	q := New(origin)
	var got []int
	q.After(30*time.Millisecond, func() { got = append(got, 3) })
	q.After(10*time.Millisecond, func() { got = append(got, 1) })
	q.After(20*time.Millisecond, func() { got = append(got, 2) })
	q.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != origin.Add(30*time.Millisecond) {
		t.Errorf("Now = %v", q.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	q := New(origin)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.After(time.Millisecond, func() { got = append(got, i) })
	}
	q.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	q := New(origin)
	if err := q.At(origin.Add(-time.Second), func() {}); !errors.Is(err, ErrPast) {
		t.Errorf("err = %v, want ErrPast", err)
	}
	// Negative After clamps to now rather than failing.
	ran := false
	q.After(-5*time.Second, func() { ran = true })
	q.Drain()
	if !ran {
		t.Error("clamped event should run")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	q := New(origin)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			q.After(time.Second, tick)
		}
	}
	q.After(0, tick)
	q.Drain()
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	if got := q.Now().Sub(origin); got != 9*time.Second {
		t.Errorf("elapsed = %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	q := New(origin)
	var got []string
	q.After(time.Second, func() { got = append(got, "a") })
	q.After(3*time.Second, func() { got = append(got, "b") })
	q.RunUntil(origin.Add(2 * time.Second))
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("got = %v", got)
	}
	if q.Now() != origin.Add(2*time.Second) {
		t.Errorf("Now = %v (clock must land exactly on the boundary)", q.Now())
	}
	if q.Pending() != 1 {
		t.Errorf("Pending = %d", q.Pending())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	q := New(origin)
	ran := false
	q.After(time.Second, func() { ran = true })
	q.RunUntil(origin.Add(time.Second))
	if !ran {
		t.Error("event exactly at the boundary must run")
	}
}

func TestRunMaxEvents(t *testing.T) {
	q := New(origin)
	count := 0
	for i := 0; i < 10; i++ {
		q.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if ran := q.Run(4); ran != 4 || count != 4 {
		t.Errorf("ran = %d count = %d", ran, count)
	}
	if q.Pending() != 6 {
		t.Errorf("Pending = %d", q.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	q := New(origin)
	if q.Step() {
		t.Error("Step on empty queue should report false")
	}
	if q.Processed() != 0 {
		t.Errorf("Processed = %d", q.Processed())
	}
}
