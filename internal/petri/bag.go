// Package petri implements place/transition Petri nets in the style of
// Peterson's "Petri Net Theory and the Modeling of Systems", extended with
// the priority input arcs of Guan, Yu and Yang's prioritized Petri net model
// (IEEE Trans. Computers, 1998), which the DMPS paper builds DOCPN upon.
//
// A net is the four-tuple C = (P, T, I, O) — or the five-tuple
// C = (P, T, I, Ip, O) when priority input arcs are present. I and O map
// transitions to bags (multisets) of places. The package provides
// construction, enabling and firing semantics (including the paper's
// priority fire rules), simulation, and structural/behavioural analysis:
// reachability, boundedness, safeness, conservation, liveness and
// coverability.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Bag is a multiset of places, used for the input and output functions
// I: T → P^∞ and O: T → P^∞. The zero value is an empty bag ready to use.
type Bag map[PlaceID]int

// NewBag returns a bag containing each given place once.
func NewBag(places ...PlaceID) Bag {
	b := make(Bag, len(places))
	for _, p := range places {
		b[p]++
	}
	return b
}

// Add increases the multiplicity of p by n. Adding a non-positive n is a
// no-op so that callers can pass computed weights without guarding.
func (b Bag) Add(p PlaceID, n int) {
	if n <= 0 {
		return
	}
	b[p] += n
}

// Count reports the multiplicity of p in the bag.
func (b Bag) Count(p PlaceID) int { return b[p] }

// Size reports the total multiplicity over all places.
func (b Bag) Size() int {
	total := 0
	for _, n := range b {
		total += n
	}
	return total
}

// IsEmpty reports whether the bag has no elements.
func (b Bag) IsEmpty() bool { return b.Size() == 0 }

// Clone returns an independent copy of the bag.
func (b Bag) Clone() Bag {
	c := make(Bag, len(b))
	for p, n := range b {
		if n > 0 {
			c[p] = n
		}
	}
	return c
}

// Union returns a new bag with, for each place, the sum of multiplicities.
func (b Bag) Union(other Bag) Bag {
	u := b.Clone()
	for p, n := range other {
		u.Add(p, n)
	}
	return u
}

// Equal reports whether two bags contain the same places with the same
// multiplicities.
func (b Bag) Equal(other Bag) bool {
	for p, n := range b {
		if n > 0 && other[p] != n {
			return false
		}
	}
	for p, n := range other {
		if n > 0 && b[p] != n {
			return false
		}
	}
	return true
}

// Places returns the distinct places of the bag in sorted order.
func (b Bag) Places() []PlaceID {
	out := make([]PlaceID, 0, len(b))
	for p, n := range b {
		if n > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the bag canonically, e.g. "{p1, p2:3}".
func (b Bag) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range b.Places() {
		if i > 0 {
			sb.WriteString(", ")
		}
		if n := b[p]; n == 1 {
			sb.WriteString(string(p))
		} else {
			fmt.Fprintf(&sb, "%s:%d", p, n)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
