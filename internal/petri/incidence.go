package petri

import (
	"fmt"
	"strings"
)

// IncidenceMatrix is the change matrix D = O − I of the net: rows are
// transitions, columns places, entry D[t][p] is the net token change at p
// when t fires under the normal rule. Priority arcs count as inputs.
type IncidenceMatrix struct {
	Places      []PlaceID
	Transitions []TransitionID
	D           [][]int // indexed [transition][place]
}

// Incidence computes the incidence matrix with places sorted
// lexicographically and transitions in insertion order.
func (n *Net) Incidence() *IncidenceMatrix {
	places := n.sortedPlaceIDs()
	idx := make(map[PlaceID]int, len(places))
	for i, p := range places {
		idx[p] = i
	}
	m := &IncidenceMatrix{Places: places, Transitions: n.Transitions()}
	m.D = make([][]int, len(m.Transitions))
	for ti, t := range m.Transitions {
		row := make([]int, len(places))
		for p, w := range n.input[t] {
			row[idx[p]] -= w
		}
		for p, w := range n.priority[t] {
			row[idx[p]] -= w
		}
		for p, w := range n.output[t] {
			row[idx[p]] += w
		}
		m.D[ti] = row
	}
	return m
}

// Apply returns the marking reached from m by firing each transition the
// number of times given in the firing-count vector x (Parikh vector),
// ignoring intermediate enabling: m' = m + x·D. Entries of x align with
// Transitions. Negative resulting token counts indicate the vector is not
// realizable from m.
func (im *IncidenceMatrix) Apply(m Marking, x []int) (Marking, bool) {
	if len(x) != len(im.Transitions) {
		return nil, false
	}
	out := m.Clone()
	for ti, count := range x {
		if count == 0 {
			continue
		}
		for pi, delta := range im.D[ti] {
			p := im.Places[pi]
			out[p] += delta * count
		}
	}
	for p, v := range out {
		if v < 0 {
			return nil, false
		}
		if v == 0 {
			delete(out, p)
		}
	}
	return out, true
}

// PInvariants computes a basis of place invariants: integer vectors y ≥ 0
// with D·y = 0 (weighted token sums conserved by every firing). The
// computation uses the Farkas algorithm over integers; the returned
// vectors are minimal-support and component-wise non-negative.
func (im *IncidenceMatrix) PInvariants() [][]int {
	nP := len(im.Places)
	nT := len(im.Transitions)
	// rows: [D^T | Identity] — work on columns of D (i.e. place space).
	type row struct {
		d []int // length nT: current transformed transition-effects
		y []int // length nP: combination coefficients (candidate invariant)
	}
	rows := make([]row, nP)
	for pi := 0; pi < nP; pi++ {
		d := make([]int, nT)
		for ti := 0; ti < nT; ti++ {
			d[ti] = im.D[ti][pi]
		}
		y := make([]int, nP)
		y[pi] = 1
		rows[pi] = row{d: d, y: y}
	}
	for ti := 0; ti < nT; ti++ {
		var pos, neg, zero []row
		for _, r := range rows {
			switch {
			case r.d[ti] > 0:
				pos = append(pos, r)
			case r.d[ti] < 0:
				neg = append(neg, r)
			default:
				zero = append(zero, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.d[ti], -rn.d[ti]
				g := gcd(a, b)
				ca, cb := b/g, a/g
				nd := make([]int, nT)
				ny := make([]int, nP)
				for k := 0; k < nT; k++ {
					nd[k] = ca*rp.d[k] + cb*rn.d[k]
				}
				for k := 0; k < nP; k++ {
					ny[k] = ca*rp.y[k] + cb*rn.y[k]
				}
				next = append(next, row{d: nd, y: normalizeVec(ny)})
			}
		}
		rows = next
	}
	var out [][]int
	seen := make(map[string]bool)
	for _, r := range rows {
		if isZeroVec(r.y) {
			continue
		}
		key := fmt.Sprint(r.y)
		if !seen[key] {
			seen[key] = true
			out = append(out, r.y)
		}
	}
	return out
}

// TInvariants computes a basis of transition invariants: non-negative
// integer firing-count vectors x with x·D = 0 — firing every transition
// x[t] times returns the net to its starting marking (if realizable).
// Presentation nets are acyclic and have none; the token-ring and
// floor-token nets do. The computation mirrors PInvariants on the
// transposed matrix.
func (im *IncidenceMatrix) TInvariants() [][]int {
	nP := len(im.Places)
	nT := len(im.Transitions)
	type row struct {
		d []int // length nP: current transformed place-effects
		x []int // length nT: combination coefficients (candidate invariant)
	}
	rows := make([]row, nT)
	for ti := 0; ti < nT; ti++ {
		d := make([]int, nP)
		copy(d, im.D[ti])
		x := make([]int, nT)
		x[ti] = 1
		rows[ti] = row{d: d, x: x}
	}
	for pi := 0; pi < nP; pi++ {
		var pos, neg, zero []row
		for _, r := range rows {
			switch {
			case r.d[pi] > 0:
				pos = append(pos, r)
			case r.d[pi] < 0:
				neg = append(neg, r)
			default:
				zero = append(zero, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.d[pi], -rn.d[pi]
				g := gcd(a, b)
				ca, cb := b/g, a/g
				nd := make([]int, nP)
				nx := make([]int, nT)
				for k := 0; k < nP; k++ {
					nd[k] = ca*rp.d[k] + cb*rn.d[k]
				}
				for k := 0; k < nT; k++ {
					nx[k] = ca*rp.x[k] + cb*rn.x[k]
				}
				next = append(next, row{d: nd, x: normalizeVec(nx)})
			}
		}
		rows = next
	}
	var out [][]int
	seen := make(map[string]bool)
	for _, r := range rows {
		if isZeroVec(r.x) {
			continue
		}
		key := fmt.Sprint(r.x)
		if !seen[key] {
			seen[key] = true
			out = append(out, r.x)
		}
	}
	return out
}

// InvariantValue evaluates the weighted token sum Σ y[p]·m(p) for an
// invariant vector aligned with Places.
func (im *IncidenceMatrix) InvariantValue(m Marking, y []int) int {
	total := 0
	for pi, p := range im.Places {
		if pi < len(y) {
			total += y[pi] * m.Tokens(p)
		}
	}
	return total
}

// String renders the matrix for debugging.
func (im *IncidenceMatrix) String() string {
	var sb strings.Builder
	sb.WriteString("      ")
	for _, p := range im.Places {
		fmt.Fprintf(&sb, "%6s", p)
	}
	sb.WriteByte('\n')
	for ti, t := range im.Transitions {
		fmt.Fprintf(&sb, "%6s", t)
		for pi := range im.Places {
			fmt.Fprintf(&sb, "%6d", im.D[ti][pi])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func normalizeVec(v []int) []int {
	g := 0
	for _, x := range v {
		g = gcd(g, x)
	}
	if g > 1 {
		for i := range v {
			v[i] /= g
		}
	}
	return v
}

func isZeroVec(v []int) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
