package petri

import (
	"errors"
	"testing"
)

func TestReachabilityChain(t *testing.T) {
	n := simpleChain(t)
	g, err := n.Reachability(NewMarking("p1"), 100)
	if err != nil {
		t.Fatalf("Reachability: %v", err)
	}
	if !g.Complete {
		t.Error("graph should be complete")
	}
	if len(g.States) != 3 {
		t.Errorf("states = %d, want 3", len(g.States))
	}
	if len(g.Edges) != 2 {
		t.Errorf("edges = %d, want 2", len(g.Edges))
	}
	dead := g.Deadlocks(n)
	if len(dead) != 1 || dead[0] != "p3=1" {
		t.Errorf("deadlocks = %v", dead)
	}
}

func TestReachabilityBudget(t *testing.T) {
	// Unbounded producer: t produces into p forever.
	n := newBuild(t).
		places("run", "p").
		transitions("t").
		in("run", "t", 1).out("t", "run", 1).out("t", "p", 1).
		net
	g, err := n.Reachability(NewMarking("run"), 10)
	if !errors.Is(err, ErrStateSpaceExceeded) {
		t.Fatalf("err = %v, want ErrStateSpaceExceeded", err)
	}
	if g.Complete {
		t.Error("graph must be marked incomplete")
	}
	if len(g.States) != 10 {
		t.Errorf("states = %d, want budget 10", len(g.States))
	}
}

func TestSafenessAndBoundedness(t *testing.T) {
	n := simpleChain(t)
	g, err := n.Reachability(NewMarking("p1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSafe() {
		t.Error("chain should be safe (1-bounded)")
	}
	if !g.IsKBounded(1) {
		t.Error("chain should be 1-bounded")
	}
	if got := g.Bound("p2"); got != 1 {
		t.Errorf("Bound(p2) = %d", got)
	}

	// A net where two tokens can pile onto one place.
	n2 := newBuild(t).
		places("a", "b", "c").
		transitions("t1", "t2").
		in("a", "t1", 1).out("t1", "c", 1).
		in("b", "t2", 1).out("t2", "c", 1).
		net
	g2, err := n2.Reachability(NewMarking("a", "b"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g2.IsSafe() {
		t.Error("c can hold 2 tokens; net is not safe")
	}
	if !g2.IsKBounded(2) {
		t.Error("net is 2-bounded")
	}
}

func TestConservation(t *testing.T) {
	// Token ring conserves; a sink transition does not.
	ring := newBuild(t).
		places("a", "b").
		transitions("ab", "ba").
		in("a", "ab", 1).out("ab", "b", 1).
		in("b", "ba", 1).out("ba", "a", 1).
		net
	g, err := ring.Reachability(NewMarking("a"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConservative() {
		t.Error("ring should conserve tokens")
	}

	sink := newBuild(t).
		places("a").
		transitions("drop").
		in("a", "drop", 1).
		net
	g2, err := sink.Reachability(NewMarking("a"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g2.IsConservative() {
		t.Error("sink destroys a token; not conservative")
	}
}

func TestLiveAndDeadTransitions(t *testing.T) {
	n := newBuild(t).
		places("p1", "p2", "never").
		transitions("t1", "tdead").
		in("p1", "t1", 1).out("t1", "p2", 1).
		in("never", "tdead", 1).out("tdead", "p2", 1).
		net
	g, err := n.Reachability(NewMarking("p1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	live := g.LiveTransitions()
	if len(live) != 1 || live[0] != "t1" {
		t.Errorf("live = %v", live)
	}
	dead := g.DeadTransitions(n)
	if len(dead) != 1 || dead[0] != "tdead" {
		t.Errorf("dead = %v", dead)
	}
}

func TestReachabilityWithPriorityRuleStates(t *testing.T) {
	// The priority rule introduces states the classic rule cannot reach:
	// firing t with only the urgent token leaves media-place empty.
	n := newBuild(t).
		places("media", "urgent", "done").
		transitions("t").
		in("media", "t", 1).
		prio("urgent", "t", 1).
		out("t", "done", 1).
		net
	g, err := n.Reachability(NewMarking("urgent"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Reaches(func(m Marking) bool { return m.Tokens("done") == 1 }) {
		t.Error("priority rule should reach done without media token")
	}
	foundPriorityEdge := false
	for _, e := range g.Edges {
		if e.Rule == FirePriority {
			foundPriorityEdge = true
		}
	}
	if !foundPriorityEdge {
		t.Error("expected a priority-rule edge in the graph")
	}
}

func TestCoverabilityBoundedNet(t *testing.T) {
	n := simpleChain(t)
	tree := n.CoverabilityTree(NewMarking("p1"), 1000)
	if !tree.IsBounded() {
		t.Errorf("chain is bounded; unbounded places = %v", tree.UnboundedPlaces())
	}
	if tree.Size() < 3 {
		t.Errorf("tree too small: %d", tree.Size())
	}
}

func TestCoverabilityUnboundedNet(t *testing.T) {
	n := newBuild(t).
		places("run", "p").
		transitions("t").
		in("run", "t", 1).out("t", "run", 1).out("t", "p", 1).
		net
	tree := n.CoverabilityTree(NewMarking("run"), 1000)
	unbounded := tree.UnboundedPlaces()
	if len(unbounded) != 1 || unbounded[0] != "p" {
		t.Errorf("unbounded = %v, want [p]", unbounded)
	}
	if tree.IsBounded() {
		t.Error("producer net is unbounded")
	}
}

func TestCoverabilityNodeBudget(t *testing.T) {
	n := newBuild(t).
		places("run", "p").
		transitions("t").
		in("run", "t", 1).out("t", "run", 1).out("t", "p", 1).
		net
	tree := n.CoverabilityTree(NewMarking("run"), 5)
	if tree.Size() > 5 {
		t.Errorf("tree size %d exceeds budget", tree.Size())
	}
}
