package petri

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the core data structures and firing invariants.

func TestQuickBagUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := bagFromBytes(xs), bagFromBytes(ys)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBagUnionSize(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := bagFromBytes(xs), bagFromBytes(ys)
		return a.Union(b).Size() == a.Size()+b.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMarkingSubAddRoundTrip(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		m := markingFromBytes(xs)
		b := bagFromBytes(ys)
		if !m.Covers(b) {
			// Make it cover by adding the bag first.
			m.AddBag(b)
		}
		before := m.Clone()
		if !m.Sub(b) {
			return false
		}
		m.AddBag(b)
		return m.Equal(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMarkingKeyInjective(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := markingFromBytes(xs), markingFromBytes(ys)
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDominatesPartialOrder(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := markingFromBytes(xs), markingFromBytes(ys)
		// Reflexive; antisymmetric up to equality.
		if !a.Dominates(a) {
			return false
		}
		if a.Dominates(b) && b.Dominates(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickFiringConservesStateEquation checks m' = m + D row for random
// nets and fully-enabled firings (the state equation of Petri net theory;
// it holds exactly when every arc's tokens are consumed in full).
func TestQuickFiringConservesStateEquation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n, m := randomNet(rng)
		enabled := n.EnabledSet(m)
		var pick TransitionID
		found := false
		for _, tr := range enabled {
			if n.EnabledFully(m, tr) && n.EnabledNormal(m, tr) {
				pick = tr
				found = true
				break
			}
		}
		if !found {
			continue
		}
		im := n.Incidence()
		x := make([]int, len(im.Transitions))
		for i, tr := range im.Transitions {
			if tr == pick {
				x[i] = 1
			}
		}
		want, ok := im.Apply(m, x)
		if !ok {
			t.Fatalf("state equation infeasible for enabled transition %q", pick)
		}
		got := m.Clone()
		if _, err := n.Fire(got, pick); err != nil {
			t.Fatalf("Fire: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("fire result %v != state equation %v (net iter %d)", got, want, iter)
		}
	}
}

// TestQuickPriorityFireNeverBlocks checks that a transition whose priority
// inputs are covered always fires successfully.
func TestQuickPriorityFireNeverBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n, m := randomNet(rng)
		for _, tr := range n.Transitions() {
			if n.EnabledPriority(m, tr) {
				cp := m.Clone()
				if _, err := n.Fire(cp, tr); err != nil {
					t.Fatalf("priority-enabled transition %q failed to fire: %v", tr, err)
				}
			}
		}
	}
}

// TestQuickTotalTokensNeverNegative fires random sequences and checks token
// counts stay non-negative everywhere.
func TestQuickTotalTokensNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		n, m := randomNet(rng)
		sim := NewSimulator(n, m, StrategyRandom, rng.Int63())
		for step := 0; step < 30; step++ {
			if _, ok := sim.Step(); !ok {
				break
			}
			for p, v := range sim.Marking() {
				if v < 0 {
					t.Fatalf("negative tokens at %q: %d", p, v)
				}
			}
		}
	}
}

func bagFromBytes(xs []uint8) Bag {
	b := make(Bag)
	for i, x := range xs {
		if i >= 8 {
			break
		}
		b.Add(PlaceID(string(rune('a'+i%4))), int(x%4))
	}
	return b
}

func markingFromBytes(xs []uint8) Marking {
	m := make(Marking)
	for i, x := range xs {
		if i >= 8 {
			break
		}
		if v := int(x % 5); v > 0 {
			m[PlaceID(string(rune('a'+i%4)))] += v
		}
	}
	return m
}

// randomNet builds a small random net plus initial marking.
func randomNet(rng *rand.Rand) (*Net, Marking) {
	n := New()
	nP := 2 + rng.Intn(4)
	nT := 1 + rng.Intn(3)
	places := make([]PlaceID, nP)
	for i := range places {
		places[i] = PlaceID(string(rune('a' + i)))
		_ = n.AddPlace(places[i], "")
	}
	for i := 0; i < nT; i++ {
		tid := TransitionID(string(rune('A' + i)))
		_ = n.AddTransition(tid, "")
		// Each transition gets 1-2 inputs, maybe a priority input, 1 output.
		for k := 0; k < 1+rng.Intn(2); k++ {
			_ = n.AddInput(places[rng.Intn(nP)], tid, 1+rng.Intn(2))
		}
		if rng.Intn(3) == 0 {
			_ = n.AddPriorityInput(places[rng.Intn(nP)], tid, 1)
		}
		_ = n.AddOutput(tid, places[rng.Intn(nP)], 1+rng.Intn(2))
	}
	m := make(Marking)
	for _, p := range places {
		if v := rng.Intn(3); v > 0 {
			m[p] = v
		}
	}
	return n, m
}
