package petri

import (
	"strings"
	"testing"
)

func TestIncidenceMatrixEntries(t *testing.T) {
	n := simpleChain(t) // p1 -> t1 -> p2 -> t2 -> p3
	im := n.Incidence()
	if len(im.Places) != 3 || len(im.Transitions) != 2 {
		t.Fatalf("dims = %dx%d", len(im.Transitions), len(im.Places))
	}
	get := func(tr TransitionID, p PlaceID) int {
		ti, pi := -1, -1
		for i, x := range im.Transitions {
			if x == tr {
				ti = i
			}
		}
		for i, x := range im.Places {
			if x == p {
				pi = i
			}
		}
		if ti < 0 || pi < 0 {
			t.Fatalf("missing %q/%q", tr, p)
		}
		return im.D[ti][pi]
	}
	if get("t1", "p1") != -1 || get("t1", "p2") != 1 || get("t1", "p3") != 0 {
		t.Errorf("t1 row wrong: %v", im.D)
	}
	if get("t2", "p2") != -1 || get("t2", "p3") != 1 {
		t.Errorf("t2 row wrong: %v", im.D)
	}
}

func TestIncidencePriorityArcsCountAsInputs(t *testing.T) {
	n := newBuild(t).
		places("p", "q").
		transitions("t").
		prio("p", "t", 2).out("t", "q", 1).
		net
	im := n.Incidence()
	if im.D[0][0] != -2 { // places sorted: p, q
		t.Errorf("priority input not counted: %v", im.D)
	}
}

func TestIncidenceApply(t *testing.T) {
	n := simpleChain(t)
	im := n.Incidence()
	m, ok := im.Apply(NewMarking("p1"), []int{1, 1})
	if !ok {
		t.Fatal("Apply failed")
	}
	if m.Tokens("p3") != 1 || m.Total() != 1 {
		t.Errorf("state equation result = %v", m)
	}
	// Infeasible: firing t2 twice needs two p2 tokens overall.
	if _, ok := im.Apply(NewMarking("p1"), []int{1, 2}); ok {
		t.Error("Apply should reject negative intermediate totals")
	}
	if _, ok := im.Apply(NewMarking("p1"), []int{1}); ok {
		t.Error("Apply should reject wrong-length vectors")
	}
}

func TestPInvariantsRing(t *testing.T) {
	// a <-> b ring: y = (1,1) is a P-invariant.
	n := newBuild(t).
		places("a", "b").
		transitions("ab", "ba").
		in("a", "ab", 1).out("ab", "b", 1).
		in("b", "ba", 1).out("ba", "a", 1).
		net
	im := n.Incidence()
	invs := im.PInvariants()
	if len(invs) == 0 {
		t.Fatal("expected at least one invariant")
	}
	found := false
	for _, y := range invs {
		if len(y) == 2 && y[0] == 1 && y[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("invariants = %v, want [1 1]", invs)
	}
	// The invariant value must be constant across reachable markings.
	g, err := n.Reachability(NewMarking("a"), 100)
	if err != nil {
		t.Fatal(err)
	}
	want := im.InvariantValue(NewMarking("a"), invs[0])
	for _, m := range g.States {
		if got := im.InvariantValue(m, invs[0]); got != want {
			t.Errorf("invariant value %d != %d at %v", got, want, m)
		}
	}
}

func TestPInvariantsSinkHasNone(t *testing.T) {
	n := newBuild(t).
		places("a").
		transitions("drop").
		in("a", "drop", 1).
		net
	invs := n.Incidence().PInvariants()
	for _, y := range invs {
		if y[0] != 0 {
			t.Errorf("sink net should have no invariant covering a: %v", invs)
		}
	}
}

func TestIncidenceString(t *testing.T) {
	n := simpleChain(t)
	s := n.Incidence().String()
	if !strings.Contains(s, "t1") || !strings.Contains(s, "p3") {
		t.Errorf("String() = %q", s)
	}
}

func TestGCDHelpers(t *testing.T) {
	if gcd(12, 18) != 6 {
		t.Errorf("gcd(12,18) = %d", gcd(12, 18))
	}
	if gcd(-4, 6) != 2 {
		t.Errorf("gcd(-4,6) = %d", gcd(-4, 6))
	}
	if gcd(0, 0) != 1 {
		t.Errorf("gcd(0,0) = %d (defined as 1 to avoid div-by-zero)", gcd(0, 0))
	}
	v := normalizeVec([]int{4, 6, 8})
	if v[0] != 2 || v[1] != 3 || v[2] != 4 {
		t.Errorf("normalizeVec = %v", v)
	}
	if !isZeroVec([]int{0, 0}) || isZeroVec([]int{0, 1}) {
		t.Error("isZeroVec wrong")
	}
}

func TestTInvariantsRing(t *testing.T) {
	// a <-> b ring: firing ab and ba once each returns to the start.
	n := newBuild(t).
		places("a", "b").
		transitions("ab", "ba").
		in("a", "ab", 1).out("ab", "b", 1).
		in("b", "ba", 1).out("ba", "a", 1).
		net
	invs := n.Incidence().TInvariants()
	if len(invs) == 0 {
		t.Fatal("ring should have a T-invariant")
	}
	found := false
	for _, x := range invs {
		if len(x) == 2 && x[0] == 1 && x[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("T-invariants = %v, want [1 1]", invs)
	}
	// Realize it: fire ab then ba and compare markings.
	m := NewMarking("a")
	start := m.Clone()
	if _, err := n.Fire(m, "ab"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Fire(m, "ba"); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(start) {
		t.Errorf("T-invariant firing did not return to start: %v", m)
	}
}

func TestTInvariantsAcyclicChainHasNone(t *testing.T) {
	n := simpleChain(t)
	invs := n.Incidence().TInvariants()
	if len(invs) != 0 {
		t.Errorf("acyclic chain should have no T-invariants: %v", invs)
	}
}

func TestTInvariantsWeightedCycle(t *testing.T) {
	// t1 produces 2 tokens into p; t2 consumes 1 and returns 1 to q...
	// build: q -t1-> p(×2), p(×2) -t2-> q : x = (1,1).
	n := newBuild(t).
		places("p", "q").
		transitions("t1", "t2").
		in("q", "t1", 1).out("t1", "p", 2).
		in("p", "t2", 2).out("t2", "q", 1).
		net
	invs := n.Incidence().TInvariants()
	found := false
	for _, x := range invs {
		if len(x) == 2 && x[0] == 1 && x[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("T-invariants = %v, want [1 1]", invs)
	}
}
