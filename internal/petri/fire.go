package petri

import (
	"fmt"
	"sort"
)

// FireRule identifies which enabling rule allowed a transition to fire.
type FireRule int

const (
	// FireNormal is the classic rule: all inputs (normal and priority)
	// carry enough tokens.
	FireNormal FireRule = iota + 1
	// FirePriority is the prioritized-net rule: the priority inputs carry
	// enough tokens, so the transition fires without waiting for the rest.
	FirePriority
)

// String implements fmt.Stringer.
func (r FireRule) String() string {
	switch r {
	case FireNormal:
		return "normal"
	case FirePriority:
		return "priority"
	default:
		return fmt.Sprintf("FireRule(%d)", int(r))
	}
}

// EnabledNormal reports whether t is enabled under the paper's normal
// rule: "a transaction with non-priority input events would fire when all
// events are complete and ready" — i.e. the marking covers I(t). Priority
// inputs are triggers, not prerequisites: their tokens are swept when
// present but their absence does not block a normal firing.
func (n *Net) EnabledNormal(m Marking, t TransitionID) bool {
	if _, ok := n.transitions[t]; !ok {
		return false
	}
	if n.input[t].IsEmpty() && n.priority[t].IsEmpty() {
		return false // source transitions must be fired explicitly by engines
	}
	if n.input[t].IsEmpty() {
		// A transition whose only inputs are priority arcs fires only on
		// its trigger.
		return false
	}
	return m.Covers(n.input[t])
}

// EnabledFully reports whether the marking covers the combined demand of
// I(t) and Ip(t), summed place-wise. A fully-enabled firing consumes every
// arc's tokens exactly, which is the regime where the incidence-matrix
// state equation holds.
func (n *Net) EnabledFully(m Marking, t TransitionID) bool {
	if !n.Enabled(m, t) {
		return false
	}
	for p, need := range n.input[t] {
		if need > 0 && m[p] < need+n.priority[t].Count(p) {
			return false
		}
	}
	for p, need := range n.priority[t] {
		if need > 0 && m[p] < need+n.input[t].Count(p) {
			return false
		}
	}
	return true
}

// EnabledPriority reports whether t is enabled under the priority rule: t
// has priority inputs and the marking covers Ip(t), regardless of I(t).
func (n *Net) EnabledPriority(m Marking, t TransitionID) bool {
	if _, ok := n.transitions[t]; !ok {
		return false
	}
	ip := n.priority[t]
	return !ip.IsEmpty() && m.Covers(ip)
}

// Enabled reports whether t may fire under either rule.
func (n *Net) Enabled(m Marking, t TransitionID) bool {
	return n.EnabledNormal(m, t) || n.EnabledPriority(m, t)
}

// EnabledSet returns the transitions enabled in m, in insertion order.
func (n *Net) EnabledSet(m Marking) []TransitionID {
	var out []TransitionID
	for _, t := range n.transitionOrder {
		if n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// FireEvent describes one firing.
type FireEvent struct {
	Transition TransitionID
	Rule       FireRule
	Consumed   Bag // tokens actually removed
	Produced   Bag // tokens deposited
}

// Fire fires t in marking m (mutating m) and returns the event. The rule
// is chosen per the paper: if the normal rule is satisfied (all
// non-priority inputs ready), fire normally, additionally sweeping any
// priority tokens already present; otherwise, if the priority inputs are
// covered, fire under the priority rule without waiting for the rest,
// sweeping whatever normal-input tokens have already arrived. Returns
// ErrNotEnabled when neither applies.
func (n *Net) Fire(m Marking, t TransitionID) (FireEvent, error) {
	if _, ok := n.transitions[t]; !ok {
		return FireEvent{}, fmt.Errorf("%w: %q", ErrUnknownTransition, t)
	}
	switch {
	case n.EnabledNormal(m, t):
		if !m.Sub(n.input[t]) {
			return FireEvent{}, fmt.Errorf("%w: %q (race on marking)", ErrNotEnabled, t)
		}
		consumed := n.input[t].Clone()
		// Sweep present priority tokens so triggers never go stale.
		consumed = consumed.Union(m.SubAvailable(n.priority[t]))
		produced := n.output[t].Clone()
		m.AddBag(produced)
		return FireEvent{Transition: t, Rule: FireNormal, Consumed: consumed, Produced: produced}, nil
	case n.EnabledPriority(m, t):
		if !m.Sub(n.priority[t]) {
			return FireEvent{}, fmt.Errorf("%w: %q (race on marking)", ErrNotEnabled, t)
		}
		consumed := n.priority[t].Clone()
		// The priority rule pre-empts: late normal inputs must not linger
		// as stale state, so consume whatever fraction already arrived.
		consumed = consumed.Union(m.SubAvailable(n.input[t]))
		produced := n.output[t].Clone()
		m.AddBag(produced)
		return FireEvent{Transition: t, Rule: FirePriority, Consumed: consumed, Produced: produced}, nil
	default:
		return FireEvent{}, fmt.Errorf("%w: %q in %s", ErrNotEnabled, t, m)
	}
}

// ResolveConflict picks which of the enabled transitions should fire when
// they compete for tokens, per the paper's rule: "a place with a token and
// several transitions enabled from this place will fire the transition with
// a priority arc from this place". Among equals the lexicographically
// smallest ID wins, making resolution deterministic. The input slice must
// be non-empty; all entries are assumed enabled in m.
func (n *Net) ResolveConflict(m Marking, enabled []TransitionID) TransitionID {
	if len(enabled) == 1 {
		return enabled[0]
	}
	best := enabled[0]
	bestScore := n.conflictScore(m, best)
	for _, t := range enabled[1:] {
		score := n.conflictScore(m, t)
		if score > bestScore || (score == bestScore && t < best) {
			best, bestScore = t, score
		}
	}
	return best
}

// conflictScore ranks a transition for conflict resolution: transitions
// whose priority inputs are marked outrank purely normal ones; more marked
// priority places outrank fewer.
func (n *Net) conflictScore(m Marking, t TransitionID) int {
	score := 0
	for p, need := range n.priority[t] {
		if need > 0 && m[p] >= need {
			score += 2
		}
	}
	return score
}

// Conflicts returns the groups of enabled transitions that share at least
// one marked input place in m (i.e. genuinely compete for tokens). Each
// group is sorted; groups of size 1 are omitted.
func (n *Net) Conflicts(m Marking) [][]TransitionID {
	enabled := n.EnabledSet(m)
	byPlace := make(map[PlaceID][]TransitionID)
	for _, t := range enabled {
		seen := make(map[PlaceID]bool)
		for _, bag := range []Bag{n.input[t], n.priority[t]} {
			for p, w := range bag {
				if w > 0 && m[p] > 0 && !seen[p] {
					seen[p] = true
					byPlace[p] = append(byPlace[p], t)
				}
			}
		}
	}
	var out [][]TransitionID
	seenKey := make(map[string]bool)
	for _, group := range byPlace {
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
		key := ""
		for _, t := range group {
			key += string(t) + "|"
		}
		if !seenKey[key] {
			seenKey[key] = true
			out = append(out, group)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
