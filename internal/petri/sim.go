package petri

import (
	"fmt"
	"math/rand"
)

// Strategy selects which enabled transition a Simulator fires next.
type Strategy int

const (
	// StrategyPriorityFirst applies the paper's conflict rule: transitions
	// with marked priority arcs fire first; ties break deterministically.
	StrategyPriorityFirst Strategy = iota + 1
	// StrategyRandom picks uniformly among enabled transitions using the
	// simulator's seeded RNG.
	StrategyRandom
	// StrategyOrdered always fires the first enabled transition in the
	// net's insertion order (deterministic, useful in tests).
	StrategyOrdered
)

// Simulator executes a net step by step from an initial marking.
// It is not safe for concurrent use.
type Simulator struct {
	net      *Net
	marking  Marking
	strategy Strategy
	rng      *rand.Rand
	trace    []FireEvent
	steps    int
}

// NewSimulator returns a simulator over net starting at initial (which is
// cloned). Seed feeds StrategyRandom; other strategies ignore it.
func NewSimulator(net *Net, initial Marking, strategy Strategy, seed int64) *Simulator {
	return &Simulator{
		net:      net,
		marking:  initial.Clone(),
		strategy: strategy,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Marking returns a copy of the current marking.
func (s *Simulator) Marking() Marking { return s.marking.Clone() }

// Steps reports how many transitions have fired so far.
func (s *Simulator) Steps() int { return s.steps }

// Trace returns the firing history.
func (s *Simulator) Trace() []FireEvent {
	out := make([]FireEvent, len(s.trace))
	copy(out, s.trace)
	return out
}

// Dead reports whether no transition is enabled.
func (s *Simulator) Dead() bool { return len(s.net.EnabledSet(s.marking)) == 0 }

// Step fires one transition chosen by the strategy. It reports false when
// the net is dead (no transition enabled).
func (s *Simulator) Step() (FireEvent, bool) {
	enabled := s.net.EnabledSet(s.marking)
	if len(enabled) == 0 {
		return FireEvent{}, false
	}
	var pick TransitionID
	switch s.strategy {
	case StrategyRandom:
		pick = enabled[s.rng.Intn(len(enabled))]
	case StrategyOrdered:
		pick = enabled[0]
	default: // StrategyPriorityFirst
		pick = s.net.ResolveConflict(s.marking, enabled)
	}
	ev, err := s.net.Fire(s.marking, pick)
	if err != nil {
		// Enabled set and Fire disagree only on an internal bug; treat as dead.
		return FireEvent{}, false
	}
	s.trace = append(s.trace, ev)
	s.steps++
	return ev, true
}

// FireSpecific fires the named transition regardless of strategy, if it is
// enabled under either rule.
func (s *Simulator) FireSpecific(t TransitionID) (FireEvent, error) {
	ev, err := s.net.Fire(s.marking, t)
	if err != nil {
		return FireEvent{}, err
	}
	s.trace = append(s.trace, ev)
	s.steps++
	return ev, nil
}

// Inject deposits tokens directly into the marking; engines use this to
// model external events (user interactions, clock ticks) arriving at
// interface places.
func (s *Simulator) Inject(b Bag) { s.marking.AddBag(b) }

// Run fires until the net is dead or maxSteps transitions have fired.
// It returns the number of transitions fired.
func (s *Simulator) Run(maxSteps int) int {
	fired := 0
	for fired < maxSteps {
		if _, ok := s.Step(); !ok {
			break
		}
		fired++
	}
	return fired
}

// RunUntil fires until pred(marking) holds, the net is dead, or maxSteps is
// reached. It reports whether the predicate was satisfied.
func (s *Simulator) RunUntil(pred func(Marking) bool, maxSteps int) bool {
	for i := 0; i < maxSteps; i++ {
		if pred(s.marking) {
			return true
		}
		if _, ok := s.Step(); !ok {
			return pred(s.marking)
		}
	}
	return pred(s.marking)
}

// TraceString renders the firing history as "t1[normal] t5[priority] ...".
func (s *Simulator) TraceString() string {
	out := ""
	for i, ev := range s.trace {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s[%s]", ev.Transition, ev.Rule)
	}
	return out
}
