package petri

import (
	"errors"
	"strings"
	"testing"
)

// build is a test helper that applies construction steps and fails fast.
type build struct {
	t   *testing.T
	net *Net
}

func newBuild(t *testing.T) *build {
	t.Helper()
	return &build{t: t, net: New()}
}

func (b *build) places(ids ...PlaceID) *build {
	b.t.Helper()
	for _, id := range ids {
		if err := b.net.AddPlace(id, ""); err != nil {
			b.t.Fatalf("AddPlace(%q): %v", id, err)
		}
	}
	return b
}

func (b *build) transitions(ids ...TransitionID) *build {
	b.t.Helper()
	for _, id := range ids {
		if err := b.net.AddTransition(id, ""); err != nil {
			b.t.Fatalf("AddTransition(%q): %v", id, err)
		}
	}
	return b
}

func (b *build) in(p PlaceID, t TransitionID, w int) *build {
	b.t.Helper()
	if err := b.net.AddInput(p, t, w); err != nil {
		b.t.Fatalf("AddInput(%q,%q,%d): %v", p, t, w, err)
	}
	return b
}

func (b *build) prio(p PlaceID, t TransitionID, w int) *build {
	b.t.Helper()
	if err := b.net.AddPriorityInput(p, t, w); err != nil {
		b.t.Fatalf("AddPriorityInput(%q,%q,%d): %v", p, t, w, err)
	}
	return b
}

func (b *build) out(t TransitionID, p PlaceID, w int) *build {
	b.t.Helper()
	if err := b.net.AddOutput(t, p, w); err != nil {
		b.t.Fatalf("AddOutput(%q,%q,%d): %v", t, p, w, err)
	}
	return b
}

// simpleChain builds p1 -> t1 -> p2 -> t2 -> p3.
func simpleChain(t *testing.T) *Net {
	t.Helper()
	return newBuild(t).
		places("p1", "p2", "p3").
		transitions("t1", "t2").
		in("p1", "t1", 1).out("t1", "p2", 1).
		in("p2", "t2", 1).out("t2", "p3", 1).
		net
}

func TestAddPlaceDuplicate(t *testing.T) {
	n := New()
	if err := n.AddPlace("p1", "first"); err != nil {
		t.Fatalf("AddPlace: %v", err)
	}
	err := n.AddPlace("p1", "second")
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate place: got %v, want ErrDuplicateID", err)
	}
}

func TestAddTransitionDuplicate(t *testing.T) {
	n := New()
	if err := n.AddTransition("t1", ""); err != nil {
		t.Fatalf("AddTransition: %v", err)
	}
	if err := n.AddTransition("t1", ""); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate transition: got %v, want ErrDuplicateID", err)
	}
}

func TestPlaceTransitionNamespaceCollision(t *testing.T) {
	n := New()
	if err := n.AddPlace("x", ""); err != nil {
		t.Fatalf("AddPlace: %v", err)
	}
	if err := n.AddTransition("x", ""); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("transition colliding with place: got %v, want ErrDuplicateID", err)
	}
	if err := n.AddTransition("y", ""); err != nil {
		t.Fatalf("AddTransition: %v", err)
	}
	if err := n.AddPlace("y", ""); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("place colliding with transition: got %v, want ErrDuplicateID", err)
	}
}

func TestArcValidation(t *testing.T) {
	n := New()
	if err := n.AddPlace("p", ""); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTransition("t", ""); err != nil {
		t.Fatal(err)
	}
	if err := n.AddInput("missing", "t", 1); !errors.Is(err, ErrUnknownPlace) {
		t.Errorf("unknown place: got %v", err)
	}
	if err := n.AddInput("p", "missing", 1); !errors.Is(err, ErrUnknownTransition) {
		t.Errorf("unknown transition: got %v", err)
	}
	if err := n.AddInput("p", "t", 0); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("zero weight: got %v", err)
	}
	if err := n.AddInput("p", "t", -3); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("negative weight: got %v", err)
	}
}

func TestArcWeightAccumulates(t *testing.T) {
	n := newBuild(t).places("p").transitions("t").in("p", "t", 1).in("p", "t", 2).net
	if got := n.Input("t").Count("p"); got != 3 {
		t.Errorf("accumulated weight = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	n := newBuild(t).places("p1").transitions("t1").net
	if err := n.Validate(); err == nil {
		t.Error("Validate should reject a transition with no arcs")
	}
	n2 := simpleChain(t)
	if err := n2.Validate(); err != nil {
		t.Errorf("Validate(simpleChain): %v", err)
	}
}

func TestPlacesTransitionsOrder(t *testing.T) {
	n := simpleChain(t)
	wantP := []PlaceID{"p1", "p2", "p3"}
	gotP := n.Places()
	if len(gotP) != len(wantP) {
		t.Fatalf("Places len = %d, want %d", len(gotP), len(wantP))
	}
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Errorf("Places[%d] = %q, want %q", i, gotP[i], wantP[i])
		}
	}
	wantT := []TransitionID{"t1", "t2"}
	gotT := n.Transitions()
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Errorf("Transitions[%d] = %q, want %q", i, gotT[i], wantT[i])
		}
	}
}

func TestInputsOfOutputsOf(t *testing.T) {
	n := simpleChain(t)
	ins := n.InputsOf("p2")
	if len(ins) != 1 || ins[0] != "t2" {
		t.Errorf("InputsOf(p2) = %v, want [t2]", ins)
	}
	outs := n.OutputsOf("p2")
	if len(outs) != 1 || outs[0] != "t1" {
		t.Errorf("OutputsOf(p2) = %v, want [t1]", outs)
	}
}

func TestStats(t *testing.T) {
	n := newBuild(t).
		places("p1", "p2").
		transitions("t1").
		in("p1", "t1", 2).prio("p2", "t1", 1).out("t1", "p2", 3).
		net
	s := n.Stats()
	if s.Places != 2 || s.Transitions != 1 {
		t.Errorf("Stats sizes = %+v", s)
	}
	if s.NormalArcs != 1 || s.PriorityArcs != 1 || s.OutputArcs != 1 {
		t.Errorf("Stats arcs = %+v", s)
	}
	if s.TotalArcWeight != 6 {
		t.Errorf("TotalArcWeight = %d, want 6", s.TotalArcWeight)
	}
}

func TestDOTOutput(t *testing.T) {
	n := simpleChain(t)
	dot := n.DOT("chain", NewMarking("p1"))
	for _, want := range []string{"digraph", "p_p1", "t_t1", "shape=circle", "shape=box", "●×1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTPriorityArcStyling(t *testing.T) {
	n := newBuild(t).places("p").transitions("t").prio("p", "t", 1).net
	dot := n.DOT("prio", nil)
	if !strings.Contains(dot, "color=red") {
		t.Errorf("priority arcs should be styled red:\n%s", dot)
	}
}
