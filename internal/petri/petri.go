package petri

import (
	"errors"
	"fmt"
	"sort"
)

// PlaceID names a place. IDs are unique within a net.
type PlaceID string

// TransitionID names a transition. IDs are unique within a net.
type TransitionID string

// Sentinel errors returned by net construction and firing.
var (
	// ErrDuplicateID is returned when a place or transition ID is reused.
	ErrDuplicateID = errors.New("petri: duplicate identifier")
	// ErrUnknownPlace is returned when an arc references an undefined place.
	ErrUnknownPlace = errors.New("petri: unknown place")
	// ErrUnknownTransition is returned when an arc or firing references an
	// undefined transition.
	ErrUnknownTransition = errors.New("petri: unknown transition")
	// ErrNotEnabled is returned by Fire when the transition is not enabled
	// under the requested rule.
	ErrNotEnabled = errors.New("petri: transition not enabled")
	// ErrInvalidWeight is returned when an arc weight is not positive.
	ErrInvalidWeight = errors.New("petri: arc weight must be positive")
)

// Place is a condition or media object holder in the net.
type Place struct {
	ID    PlaceID
	Label string // human-readable annotation, may be empty
}

// Transition is an event of the net.
type Transition struct {
	ID    TransitionID
	Label string
}

// Net is a (prioritized) Petri net structure C = (P, T, I, Ip, O).
// Construct with New and the Add* methods; a Net is not safe for concurrent
// mutation but is safe for concurrent read-only use once built.
type Net struct {
	places      map[PlaceID]*Place
	transitions map[TransitionID]*Transition
	input       map[TransitionID]Bag // I: normal input arcs
	priority    map[TransitionID]Bag // Ip: priority input arcs
	output      map[TransitionID]Bag // O: output arcs

	placeOrder      []PlaceID      // insertion order, for deterministic iteration
	transitionOrder []TransitionID // insertion order
}

// New returns an empty net.
func New() *Net {
	return &Net{
		places:      make(map[PlaceID]*Place),
		transitions: make(map[TransitionID]*Transition),
		input:       make(map[TransitionID]Bag),
		priority:    make(map[TransitionID]Bag),
		output:      make(map[TransitionID]Bag),
	}
}

// AddPlace adds a place with the given ID and optional label.
func (n *Net) AddPlace(id PlaceID, label string) error {
	if id == "" {
		return fmt.Errorf("%w: empty place id", ErrUnknownPlace)
	}
	if _, ok := n.places[id]; ok {
		return fmt.Errorf("%w: place %q", ErrDuplicateID, id)
	}
	if _, ok := n.transitions[TransitionID(id)]; ok {
		return fmt.Errorf("%w: %q already names a transition", ErrDuplicateID, id)
	}
	n.places[id] = &Place{ID: id, Label: label}
	n.placeOrder = append(n.placeOrder, id)
	return nil
}

// AddTransition adds a transition with the given ID and optional label.
func (n *Net) AddTransition(id TransitionID, label string) error {
	if id == "" {
		return fmt.Errorf("%w: empty transition id", ErrUnknownTransition)
	}
	if _, ok := n.transitions[id]; ok {
		return fmt.Errorf("%w: transition %q", ErrDuplicateID, id)
	}
	if _, ok := n.places[PlaceID(id)]; ok {
		return fmt.Errorf("%w: %q already names a place", ErrDuplicateID, id)
	}
	n.transitions[id] = &Transition{ID: id, Label: label}
	n.transitionOrder = append(n.transitionOrder, id)
	return nil
}

// AddInput adds a normal input arc from place p to transition t with the
// given weight (multiplicity in I(t)).
func (n *Net) AddInput(p PlaceID, t TransitionID, weight int) error {
	return n.addArc(n.input, p, t, weight)
}

// AddPriorityInput adds a priority input arc from p to t. Per the
// prioritized-net fire rule, a token on a priority input may force t to
// fire without waiting for its normal inputs.
func (n *Net) AddPriorityInput(p PlaceID, t TransitionID, weight int) error {
	return n.addArc(n.priority, p, t, weight)
}

// AddOutput adds an output arc from transition t to place p.
func (n *Net) AddOutput(t TransitionID, p PlaceID, weight int) error {
	if err := n.checkArc(p, t, weight); err != nil {
		return err
	}
	bag := n.output[t]
	if bag == nil {
		bag = make(Bag)
		n.output[t] = bag
	}
	bag.Add(p, weight)
	return nil
}

func (n *Net) addArc(arcs map[TransitionID]Bag, p PlaceID, t TransitionID, weight int) error {
	if err := n.checkArc(p, t, weight); err != nil {
		return err
	}
	bag := arcs[t]
	if bag == nil {
		bag = make(Bag)
		arcs[t] = bag
	}
	bag.Add(p, weight)
	return nil
}

func (n *Net) checkArc(p PlaceID, t TransitionID, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("%w: got %d", ErrInvalidWeight, weight)
	}
	if _, ok := n.places[p]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlace, p)
	}
	if _, ok := n.transitions[t]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTransition, t)
	}
	return nil
}

// Place returns the place with the given ID, or nil.
func (n *Net) Place(id PlaceID) *Place { return n.places[id] }

// Transition returns the transition with the given ID, or nil.
func (n *Net) Transition(id TransitionID) *Transition { return n.transitions[id] }

// Places returns all place IDs in insertion order.
func (n *Net) Places() []PlaceID {
	out := make([]PlaceID, len(n.placeOrder))
	copy(out, n.placeOrder)
	return out
}

// Transitions returns all transition IDs in insertion order.
func (n *Net) Transitions() []TransitionID {
	out := make([]TransitionID, len(n.transitionOrder))
	copy(out, n.transitionOrder)
	return out
}

// Input returns a copy of I(t), the normal input bag of t.
func (n *Net) Input(t TransitionID) Bag { return n.input[t].Clone() }

// PriorityInput returns a copy of Ip(t), the priority input bag of t.
func (n *Net) PriorityInput(t TransitionID) Bag { return n.priority[t].Clone() }

// Output returns a copy of O(t), the output bag of t.
func (n *Net) Output(t TransitionID) Bag { return n.output[t].Clone() }

// HasPriorityInput reports whether t has at least one priority input arc.
func (n *Net) HasPriorityInput(t TransitionID) bool { return !n.priority[t].IsEmpty() }

// InputsOf returns every transition that consumes from place p (via normal
// or priority arcs), sorted by ID.
func (n *Net) InputsOf(p PlaceID) []TransitionID {
	var out []TransitionID
	for _, t := range n.transitionOrder {
		if n.input[t].Count(p) > 0 || n.priority[t].Count(p) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// OutputsOf returns every transition that produces into place p, sorted by
// insertion order.
func (n *Net) OutputsOf(p PlaceID) []TransitionID {
	var out []TransitionID
	for _, t := range n.transitionOrder {
		if n.output[t].Count(p) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks structural sanity: every transition must have at least one
// input or output arc, and arc endpoints must exist (guaranteed by
// construction, re-checked defensively).
func (n *Net) Validate() error {
	for _, t := range n.transitionOrder {
		if n.input[t].IsEmpty() && n.priority[t].IsEmpty() && n.output[t].IsEmpty() {
			return fmt.Errorf("%w: transition %q has no arcs", ErrUnknownTransition, t)
		}
	}
	for t, bag := range n.input {
		if _, ok := n.transitions[t]; !ok {
			return fmt.Errorf("%w: arc references %q", ErrUnknownTransition, t)
		}
		for p := range bag {
			if _, ok := n.places[p]; !ok {
				return fmt.Errorf("%w: arc references %q", ErrUnknownPlace, p)
			}
		}
	}
	return nil
}

// Stats summarizes the size of the net.
type Stats struct {
	Places          int
	Transitions     int
	NormalArcs      int // distinct (place, transition) normal input pairs
	PriorityArcs    int
	OutputArcs      int
	TotalArcWeight  int
	PriorityWeights int
}

// Stats returns size statistics for the net.
func (n *Net) Stats() Stats {
	s := Stats{Places: len(n.places), Transitions: len(n.transitions)}
	for _, b := range n.input {
		s.NormalArcs += len(b.Places())
		s.TotalArcWeight += b.Size()
	}
	for _, b := range n.priority {
		s.PriorityArcs += len(b.Places())
		s.PriorityWeights += b.Size()
		s.TotalArcWeight += b.Size()
	}
	for _, b := range n.output {
		s.OutputArcs += len(b.Places())
		s.TotalArcWeight += b.Size()
	}
	return s
}

// sortedPlaceIDs returns the net's place IDs sorted lexicographically.
func (n *Net) sortedPlaceIDs() []PlaceID {
	out := n.Places()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
