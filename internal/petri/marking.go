package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Marking assigns a token count to each place. Places absent from the map
// hold zero tokens. The zero value (nil) is a valid empty marking for reads;
// use make(Marking) or NewMarking before writing.
type Marking map[PlaceID]int

// NewMarking returns a marking with one token on each listed place.
func NewMarking(places ...PlaceID) Marking {
	m := make(Marking, len(places))
	for _, p := range places {
		m[p]++
	}
	return m
}

// Tokens reports the token count at place p.
func (m Marking) Tokens(p PlaceID) int { return m[p] }

// Set assigns exactly n tokens to place p (n < 0 is clamped to 0).
func (m Marking) Set(p PlaceID, n int) {
	if n <= 0 {
		delete(m, p)
		return
	}
	m[p] = n
}

// Total reports the total number of tokens in the marking.
func (m Marking) Total() int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// Covers reports whether the marking has at least the tokens demanded by
// the bag, i.e. m(p) ≥ b(p) for every place p.
func (m Marking) Covers(b Bag) bool {
	for p, need := range b {
		if need > 0 && m[p] < need {
			return false
		}
	}
	return true
}

// Sub removes the bag's tokens from the marking. It reports false and
// leaves the marking unchanged when the marking does not cover the bag.
func (m Marking) Sub(b Bag) bool {
	if !m.Covers(b) {
		return false
	}
	for p, need := range b {
		if need <= 0 {
			continue
		}
		if rest := m[p] - need; rest > 0 {
			m[p] = rest
		} else {
			delete(m, p)
		}
	}
	return true
}

// SubAvailable removes up to the bag's tokens from the marking, consuming
// whatever is present. It is used by the priority fire rule, which consumes
// the normal inputs that have already arrived when a priority input forces
// the transition. It returns the bag of tokens actually consumed.
func (m Marking) SubAvailable(b Bag) Bag {
	consumed := make(Bag)
	for p, need := range b {
		if need <= 0 {
			continue
		}
		have := m[p]
		take := need
		if have < take {
			take = have
		}
		if take == 0 {
			continue
		}
		consumed.Add(p, take)
		if rest := have - take; rest > 0 {
			m[p] = rest
		} else {
			delete(m, p)
		}
	}
	return consumed
}

// AddBag deposits the bag's tokens into the marking.
func (m Marking) AddBag(b Bag) {
	for p, n := range b {
		if n > 0 {
			m[p] += n
		}
	}
}

// Clone returns an independent copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	for p, n := range m {
		if n > 0 {
			c[p] = n
		}
	}
	return c
}

// Equal reports whether two markings assign identical token counts.
func (m Marking) Equal(other Marking) bool {
	for p, n := range m {
		if n > 0 && other[p] != n {
			return false
		}
	}
	for p, n := range other {
		if n > 0 && m[p] != n {
			return false
		}
	}
	return true
}

// Dominates reports whether m(p) ≥ other(p) for all p. Together with
// !Equal it detects strict growth, the unboundedness witness used by the
// coverability construction.
func (m Marking) Dominates(other Marking) bool {
	for p, n := range other {
		if n > 0 && m[p] < n {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key for state-space
// exploration, e.g. "p1=1;p3=2".
func (m Marking) Key() string {
	if len(m) == 0 {
		return ""
	}
	places := make([]PlaceID, 0, len(m))
	for p, n := range m {
		if n > 0 {
			places = append(places, p)
		}
	}
	sort.Slice(places, func(i, j int) bool { return places[i] < places[j] })
	var sb strings.Builder
	for i, p := range places {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%s=%d", p, m[p])
	}
	return sb.String()
}

// String renders the marking like "[p1=1 p3=2]".
func (m Marking) String() string {
	key := m.Key()
	if key == "" {
		return "[]"
	}
	return "[" + strings.ReplaceAll(key, ";", " ") + "]"
}
