package petri

import (
	"strings"
	"testing"
)

func TestSimulatorRunChainToCompletion(t *testing.T) {
	n := simpleChain(t)
	sim := NewSimulator(n, NewMarking("p1"), StrategyOrdered, 1)
	fired := sim.Run(100)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if !sim.Dead() {
		t.Error("net should be dead at p3")
	}
	if m := sim.Marking(); m.Tokens("p3") != 1 || m.Total() != 1 {
		t.Errorf("final marking = %v", m)
	}
	if got := sim.TraceString(); got != "t1[normal] t2[normal]" {
		t.Errorf("trace = %q", got)
	}
}

func TestSimulatorStepOnDeadNet(t *testing.T) {
	n := simpleChain(t)
	sim := NewSimulator(n, NewMarking(), StrategyOrdered, 1)
	if _, ok := sim.Step(); ok {
		t.Error("Step on dead net should report false")
	}
	if sim.Steps() != 0 {
		t.Errorf("Steps = %d", sim.Steps())
	}
}

func TestSimulatorRandomIsSeeded(t *testing.T) {
	// A fork: p -> t1|t2, both re-produce p; random strategy must be
	// reproducible for a fixed seed.
	mk := func(seed int64) string {
		n := newBuild(t).
			places("p").
			transitions("t1", "t2").
			in("p", "t1", 1).out("t1", "p", 1).
			in("p", "t2", 1).out("t2", "p", 1).
			net
		sim := NewSimulator(n, NewMarking("p"), StrategyRandom, seed)
		sim.Run(50)
		return sim.TraceString()
	}
	if mk(42) != mk(42) {
		t.Error("same seed should give same trace")
	}
	if mk(1) == mk(2) && mk(1) == mk(3) {
		t.Error("different seeds should usually differ")
	}
}

func TestSimulatorPriorityFirstStrategy(t *testing.T) {
	n := newBuild(t).
		places("shared", "a", "b").
		transitions("normalT", "prioT").
		in("shared", "normalT", 1).out("normalT", "a", 1).
		prio("shared", "prioT", 1).out("prioT", "b", 1).
		net
	sim := NewSimulator(n, NewMarking("shared"), StrategyPriorityFirst, 1)
	ev, ok := sim.Step()
	if !ok {
		t.Fatal("Step failed")
	}
	if ev.Transition != "prioT" {
		t.Errorf("fired %q, want prioT", ev.Transition)
	}
}

func TestSimulatorInject(t *testing.T) {
	n := simpleChain(t)
	sim := NewSimulator(n, NewMarking(), StrategyOrdered, 1)
	if !sim.Dead() {
		t.Fatal("empty marking should be dead")
	}
	sim.Inject(NewBag("p1"))
	if sim.Dead() {
		t.Error("injection should enable t1")
	}
	sim.Run(10)
	if m := sim.Marking(); m.Tokens("p3") != 1 {
		t.Errorf("marking = %v", m)
	}
}

func TestSimulatorFireSpecific(t *testing.T) {
	n := newBuild(t).
		places("p", "a", "b").
		transitions("t1", "t2").
		in("p", "t1", 1).out("t1", "a", 1).
		in("p", "t2", 1).out("t2", "b", 1).
		net
	sim := NewSimulator(n, NewMarking("p"), StrategyOrdered, 1)
	if _, err := sim.FireSpecific("t2"); err != nil {
		t.Fatalf("FireSpecific: %v", err)
	}
	if m := sim.Marking(); m.Tokens("b") != 1 {
		t.Errorf("marking = %v", m)
	}
	if _, err := sim.FireSpecific("t1"); err == nil {
		t.Error("t1 should now be disabled")
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	n := simpleChain(t)
	sim := NewSimulator(n, NewMarking("p1"), StrategyOrdered, 1)
	ok := sim.RunUntil(func(m Marking) bool { return m.Tokens("p2") == 1 }, 10)
	if !ok {
		t.Error("RunUntil should reach p2")
	}
	if sim.Steps() != 1 {
		t.Errorf("Steps = %d, want 1 (stop as soon as predicate holds)", sim.Steps())
	}
}

func TestSimulatorRunMaxSteps(t *testing.T) {
	// Self-loop never dies; Run must respect maxSteps.
	n := newBuild(t).places("p").transitions("t").in("p", "t", 1).out("t", "p", 1).net
	sim := NewSimulator(n, NewMarking("p"), StrategyOrdered, 1)
	if fired := sim.Run(7); fired != 7 {
		t.Errorf("fired = %d, want 7", fired)
	}
}

func TestSimulatorTraceIsCopy(t *testing.T) {
	n := simpleChain(t)
	sim := NewSimulator(n, NewMarking("p1"), StrategyOrdered, 1)
	sim.Run(10)
	tr := sim.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace len = %d", len(tr))
	}
	tr[0].Transition = "mutated"
	if sim.Trace()[0].Transition == "mutated" {
		t.Error("Trace should return a copy")
	}
	if !strings.HasPrefix(sim.TraceString(), "t1") {
		t.Errorf("TraceString = %q", sim.TraceString())
	}
}
