package petri

import "testing"

func TestBagBasics(t *testing.T) {
	b := NewBag("a", "b", "a")
	if got := b.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := b.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	if b.IsEmpty() {
		t.Error("IsEmpty on non-empty bag")
	}
	var zero Bag
	if !zero.IsEmpty() {
		t.Error("zero bag should be empty")
	}
}

func TestBagAddIgnoresNonPositive(t *testing.T) {
	b := make(Bag)
	b.Add("p", 0)
	b.Add("p", -5)
	if !b.IsEmpty() {
		t.Errorf("bag should stay empty, got %v", b)
	}
}

func TestBagUnionClone(t *testing.T) {
	a := NewBag("x")
	bb := NewBag("x", "y")
	u := a.Union(bb)
	if u.Count("x") != 2 || u.Count("y") != 1 {
		t.Errorf("Union = %v", u)
	}
	// Union must not alias its receivers.
	a.Add("x", 10)
	if u.Count("x") != 2 {
		t.Error("Union aliases receiver")
	}
	c := bb.Clone()
	c.Add("z", 1)
	if bb.Count("z") != 0 {
		t.Error("Clone aliases source")
	}
}

func TestBagEqual(t *testing.T) {
	if !NewBag("a", "b").Equal(NewBag("b", "a")) {
		t.Error("order must not matter")
	}
	if NewBag("a").Equal(NewBag("a", "a")) {
		t.Error("multiplicity must matter")
	}
	withZero := Bag{"a": 1, "ghost": 0}
	if !withZero.Equal(NewBag("a")) {
		t.Error("zero entries must be ignored")
	}
}

func TestBagString(t *testing.T) {
	b := Bag{"p2": 3, "p1": 1}
	if got := b.String(); got != "{p1, p2:3}" {
		t.Errorf("String = %q", got)
	}
}

func TestMarkingCoversSub(t *testing.T) {
	m := NewMarking("p1", "p1", "p2")
	if !m.Covers(NewBag("p1", "p2")) {
		t.Error("should cover subset")
	}
	if m.Covers(NewBag("p3")) {
		t.Error("should not cover missing place")
	}
	if !m.Sub(NewBag("p1", "p2")) {
		t.Error("Sub should succeed")
	}
	if m.Tokens("p1") != 1 || m.Tokens("p2") != 0 {
		t.Errorf("after Sub: %v", m)
	}
	// Failed Sub must leave marking untouched.
	before := m.Clone()
	if m.Sub(NewBag("p1", "p1")) {
		t.Error("Sub should fail when short")
	}
	if !m.Equal(before) {
		t.Errorf("failed Sub mutated marking: %v vs %v", m, before)
	}
}

func TestMarkingSubAvailable(t *testing.T) {
	m := NewMarking("p1")
	consumed := m.SubAvailable(Bag{"p1": 2, "p2": 1})
	if consumed.Count("p1") != 1 || consumed.Count("p2") != 0 {
		t.Errorf("consumed = %v", consumed)
	}
	if m.Total() != 0 {
		t.Errorf("marking after SubAvailable = %v", m)
	}
}

func TestMarkingSetClamps(t *testing.T) {
	m := make(Marking)
	m.Set("p", 5)
	if m.Tokens("p") != 5 {
		t.Errorf("Set: %v", m)
	}
	m.Set("p", -1)
	if m.Tokens("p") != 0 {
		t.Errorf("Set negative should clamp: %v", m)
	}
	if _, exists := m["p"]; exists {
		t.Error("Set(0) should delete the entry")
	}
}

func TestMarkingDominates(t *testing.T) {
	big := Marking{"a": 2, "b": 1}
	small := Marking{"a": 1}
	if !big.Dominates(small) {
		t.Error("big should dominate small")
	}
	if small.Dominates(big) {
		t.Error("small should not dominate big")
	}
	if !big.Dominates(big) {
		t.Error("dominates is reflexive")
	}
}

func TestMarkingKeyCanonical(t *testing.T) {
	a := Marking{"x": 1, "y": 2}
	b := Marking{"y": 2, "x": 1, "z": 0}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	var empty Marking
	if empty.Key() != "" {
		t.Errorf("empty key = %q", empty.Key())
	}
	if empty.String() != "[]" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestMarkingCloneIndependent(t *testing.T) {
	m := NewMarking("p")
	c := m.Clone()
	c.AddBag(NewBag("p"))
	if m.Tokens("p") != 1 {
		t.Error("Clone aliases source")
	}
}
