package petri

import "sort"

// Omega is the token count representing "unbounded" in the coverability
// construction (Karp–Miller). Any count at or above OmegaThreshold in a
// generalized marking is treated as ω.
const Omega = int(^uint(0) >> 1) // max int

// omegaMarking is a marking that may contain ω entries.
type omegaMarking = Marking

// CoverabilityNode is one node of the Karp–Miller tree.
type CoverabilityNode struct {
	Marking  Marking // may contain Omega entries
	Depth    int
	Via      TransitionID // transition fired to reach this node ("" at root)
	Children []*CoverabilityNode
}

// CoverabilityTree builds the Karp–Miller coverability tree from initial,
// bounded to maxNodes nodes. Unlike plain reachability it terminates on
// unbounded nets by accelerating strictly-growing places to ω.
func (n *Net) CoverabilityTree(initial Marking, maxNodes int) *CoverabilityNode {
	root := &CoverabilityNode{Marking: initial.Clone()}
	count := 1
	// seen maps marking keys to true for "duplicate" pruning.
	seen := map[string]bool{root.Marking.Key(): true}
	stack := []*CoverabilityNode{root}
	ancestors := map[*CoverabilityNode]*CoverabilityNode{root: nil}
	for len(stack) > 0 && count < maxNodes {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.transitionOrder {
			if count >= maxNodes {
				break
			}
			if !n.omegaEnabled(node.Marking, t) {
				continue
			}
			next := n.omegaFire(node.Marking, t)
			// Acceleration: if an ancestor is strictly dominated, set the
			// growing places to ω.
			for anc := node; anc != nil; anc = ancestors[anc] {
				if next.Dominates(anc.Marking) && !next.Equal(anc.Marking) {
					for p, v := range next {
						if v > anc.Marking[p] {
							next[p] = Omega
						}
					}
				}
			}
			child := &CoverabilityNode{Marking: next, Depth: node.Depth + 1, Via: t}
			node.Children = append(node.Children, child)
			ancestors[child] = node
			count++
			if key := next.Key(); !seen[key] {
				seen[key] = true
				stack = append(stack, child)
			}
		}
	}
	return root
}

// omegaCovers reports coverage over generalized markings (ω covers all).
func omegaCovers(m omegaMarking, b Bag) bool {
	for p, need := range b {
		if need <= 0 {
			continue
		}
		if m[p] != Omega && m[p] < need {
			return false
		}
	}
	return true
}

// omegaEnabled mirrors Enabled over generalized markings: the normal rule
// needs all non-priority inputs; the priority rule needs only the
// priority inputs.
func (n *Net) omegaEnabled(m omegaMarking, t TransitionID) bool {
	if !n.input[t].IsEmpty() && omegaCovers(m, n.input[t]) {
		return true
	}
	ip := n.priority[t]
	return !ip.IsEmpty() && omegaCovers(m, ip)
}

// omegaFire fires t on a copy of the generalized marking, with ω absorbing
// subtraction and addition. Consumption mirrors Fire: the satisfied rule's
// inputs are taken in full, the other kind is swept as available.
func (n *Net) omegaFire(m omegaMarking, t TransitionID) omegaMarking {
	next := m.Clone()
	takeFull := func(b Bag) {
		for p, need := range b {
			if need <= 0 || next[p] == Omega {
				continue
			}
			next.Set(p, next[p]-need)
		}
	}
	sweep := func(b Bag) {
		for p, need := range b {
			if need <= 0 || next[p] == Omega {
				continue
			}
			have := next[p]
			if have > need {
				next.Set(p, have-need)
			} else {
				next.Set(p, 0)
			}
		}
	}
	if !n.input[t].IsEmpty() && omegaCovers(m, n.input[t]) {
		takeFull(n.input[t])
		sweep(n.priority[t])
	} else {
		takeFull(n.priority[t])
		sweep(n.input[t])
	}
	for p, add := range n.output[t] {
		if add <= 0 || next[p] == Omega {
			continue
		}
		next[p] += add
	}
	return next
}

// UnboundedPlaces walks the coverability tree and returns the places that
// acquire ω, i.e. the witnesses of unboundedness, sorted.
func (c *CoverabilityNode) UnboundedPlaces() []PlaceID {
	seen := make(map[PlaceID]bool)
	var walk func(*CoverabilityNode)
	walk = func(node *CoverabilityNode) {
		for p, v := range node.Marking {
			if v == Omega {
				seen[p] = true
			}
		}
		for _, ch := range node.Children {
			walk(ch)
		}
	}
	walk(c)
	out := make([]PlaceID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsBounded reports whether no place acquires ω anywhere in the tree.
func (c *CoverabilityNode) IsBounded() bool { return len(c.UnboundedPlaces()) == 0 }

// Size reports the number of nodes in the tree.
func (c *CoverabilityNode) Size() int {
	n := 1
	for _, ch := range c.Children {
		n += ch.Size()
	}
	return n
}
