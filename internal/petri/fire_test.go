package petri

import (
	"errors"
	"testing"
)

func TestFireNormalRule(t *testing.T) {
	n := simpleChain(t)
	m := NewMarking("p1")
	ev, err := n.Fire(m, "t1")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if ev.Rule != FireNormal {
		t.Errorf("Rule = %v, want normal", ev.Rule)
	}
	if m.Tokens("p1") != 0 || m.Tokens("p2") != 1 {
		t.Errorf("marking after fire: %v", m)
	}
}

func TestFireNotEnabled(t *testing.T) {
	n := simpleChain(t)
	m := NewMarking("p1")
	if _, err := n.Fire(m, "t2"); !errors.Is(err, ErrNotEnabled) {
		t.Errorf("firing disabled transition: got %v, want ErrNotEnabled", err)
	}
	if _, err := n.Fire(m, "nope"); !errors.Is(err, ErrUnknownTransition) {
		t.Errorf("firing unknown transition: got %v", err)
	}
}

func TestFireWeightedArcs(t *testing.T) {
	n := newBuild(t).
		places("in", "out").
		transitions("t").
		in("in", "t", 3).out("t", "out", 2).
		net
	m := Marking{"in": 2}
	if n.Enabled(m, "t") {
		t.Error("2 < 3 tokens should not enable t")
	}
	m.Set("in", 3)
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if m.Tokens("in") != 0 || m.Tokens("out") != 2 {
		t.Errorf("marking = %v", m)
	}
	if ev.Consumed.Count("in") != 3 || ev.Produced.Count("out") != 2 {
		t.Errorf("event = %+v", ev)
	}
}

// priorityNet builds the paper's scenario: t has a normal input (media
// ready) and a priority input (user interaction / clock deadline); the
// priority token forces firing without waiting for the normal one.
func priorityNet(t *testing.T) *Net {
	t.Helper()
	return newBuild(t).
		places("media", "urgent", "done").
		transitions("t").
		in("media", "t", 1).
		prio("urgent", "t", 1).
		out("t", "done", 1).
		net
}

func TestPriorityFiresWithoutNormalInput(t *testing.T) {
	n := priorityNet(t)
	m := NewMarking("urgent") // media has NOT arrived
	if n.EnabledNormal(m, "t") {
		t.Error("normal rule should not hold without media token")
	}
	if !n.EnabledPriority(m, "t") {
		t.Fatal("priority rule should hold")
	}
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if ev.Rule != FirePriority {
		t.Errorf("Rule = %v, want priority", ev.Rule)
	}
	if m.Tokens("done") != 1 {
		t.Errorf("marking = %v", m)
	}
}

func TestPriorityConsumesAvailableNormalTokens(t *testing.T) {
	n := newBuild(t).
		places("a", "b", "urgent", "done").
		transitions("t").
		in("a", "t", 1).in("b", "t", 1).
		prio("urgent", "t", 1).
		out("t", "done", 1).
		net
	// a arrived, b did not; priority fire must sweep a to avoid stale tokens.
	m := NewMarking("a", "urgent")
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if ev.Rule != FirePriority {
		t.Fatalf("Rule = %v", ev.Rule)
	}
	if ev.Consumed.Count("a") != 1 || ev.Consumed.Count("urgent") != 1 {
		t.Errorf("Consumed = %v", ev.Consumed)
	}
	if m.Tokens("a") != 0 || m.Total() != 1 || m.Tokens("done") != 1 {
		t.Errorf("marking = %v", m)
	}
}

func TestNormalRulePreferredWhenAllInputsReady(t *testing.T) {
	n := priorityNet(t)
	m := NewMarking("media", "urgent")
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if ev.Rule != FireNormal {
		t.Errorf("Rule = %v, want normal when everything is ready", ev.Rule)
	}
	if m.Total() != 1 || m.Tokens("done") != 1 {
		t.Errorf("marking = %v", m)
	}
}

func TestPriorityRuleRequiresPriorityArc(t *testing.T) {
	n := simpleChain(t)
	m := NewMarking() // empty
	if n.EnabledPriority(m, "t1") {
		t.Error("transition without priority arcs is never priority-enabled")
	}
}

func TestNormalFireDoesNotRequirePriorityToken(t *testing.T) {
	// Priority inputs are triggers, not prerequisites: with only the
	// media token present the transition fires normally.
	n := priorityNet(t)
	m := NewMarking("media")
	if !n.EnabledNormal(m, "t") {
		t.Fatal("normal rule should hold without the priority token")
	}
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if ev.Rule != FireNormal {
		t.Errorf("Rule = %v", ev.Rule)
	}
	if m.Tokens("done") != 1 || m.Total() != 1 {
		t.Errorf("marking = %v", m)
	}
}

func TestNormalFireSweepsPriorityTokens(t *testing.T) {
	n := priorityNet(t)
	m := NewMarking("media", "urgent")
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Consumed.Count("urgent") != 1 {
		t.Errorf("priority token not swept: consumed %v", ev.Consumed)
	}
	if m.Tokens("urgent") != 0 {
		t.Error("stale priority token")
	}
}

func TestPriorityOnlyTransitionNeedsTrigger(t *testing.T) {
	// A transition whose only inputs are priority arcs fires only when
	// triggered.
	n := newBuild(t).
		places("trigger", "out").
		transitions("t").
		prio("trigger", "t", 1).
		out("t", "out", 1).
		net
	if n.EnabledNormal(NewMarking(), "t") || n.Enabled(NewMarking(), "t") {
		t.Error("must not be enabled without the trigger")
	}
	m := NewMarking("trigger")
	ev, err := n.Fire(m, "t")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Rule != FirePriority {
		t.Errorf("Rule = %v", ev.Rule)
	}
}

func TestEnabledFully(t *testing.T) {
	n := priorityNet(t)
	if !n.EnabledFully(NewMarking("media", "urgent"), "t") {
		t.Error("both tokens present: fully enabled")
	}
	if n.EnabledFully(NewMarking("media"), "t") {
		t.Error("missing priority token: not fully enabled")
	}
	if n.EnabledFully(NewMarking("urgent"), "t") {
		t.Error("missing media token: not fully enabled")
	}
}

func TestEnabledSetOrder(t *testing.T) {
	n := newBuild(t).
		places("p").
		transitions("t1", "t2").
		in("p", "t1", 1).in("p", "t2", 1).
		out("t1", "p", 1).out("t2", "p", 1).
		net
	got := n.EnabledSet(NewMarking("p"))
	if len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Errorf("EnabledSet = %v", got)
	}
}

func TestResolveConflictPrefersPriorityArc(t *testing.T) {
	// Paper rule: a place with a token and several transitions enabled from
	// it fires the transition with a priority arc from this place.
	n := newBuild(t).
		places("shared", "a", "b").
		transitions("normalT", "prioT").
		in("shared", "normalT", 1).out("normalT", "a", 1).
		prio("shared", "prioT", 1).out("prioT", "b", 1).
		net
	m := NewMarking("shared")
	enabled := n.EnabledSet(m)
	if len(enabled) != 2 {
		t.Fatalf("enabled = %v", enabled)
	}
	if got := n.ResolveConflict(m, enabled); got != "prioT" {
		t.Errorf("ResolveConflict = %q, want prioT", got)
	}
}

func TestResolveConflictDeterministicTieBreak(t *testing.T) {
	n := newBuild(t).
		places("p", "x", "y").
		transitions("tb", "ta").
		in("p", "tb", 1).out("tb", "x", 1).
		in("p", "ta", 1).out("ta", "y", 1).
		net
	m := NewMarking("p")
	if got := n.ResolveConflict(m, n.EnabledSet(m)); got != "ta" {
		t.Errorf("tie-break = %q, want lexicographically smallest (ta)", got)
	}
}

func TestConflictsDetection(t *testing.T) {
	n := newBuild(t).
		places("shared", "solo", "o1", "o2", "o3").
		transitions("t1", "t2", "t3").
		in("shared", "t1", 1).out("t1", "o1", 1).
		in("shared", "t2", 1).out("t2", "o2", 1).
		in("solo", "t3", 1).out("t3", "o3", 1).
		net
	m := NewMarking("shared", "solo")
	groups := n.Conflicts(m)
	if len(groups) != 1 {
		t.Fatalf("Conflicts = %v, want one group", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != "t1" || groups[0][1] != "t2" {
		t.Errorf("group = %v", groups[0])
	}
}

func TestFireEventBagsAreCopies(t *testing.T) {
	n := simpleChain(t)
	m := NewMarking("p1")
	ev, err := n.Fire(m, "t1")
	if err != nil {
		t.Fatal(err)
	}
	ev.Produced.Add("p2", 100)
	if n.Output("t1").Count("p2") != 1 {
		t.Error("FireEvent.Produced aliases the net's output bag")
	}
}
