package petri

import (
	"errors"
	"fmt"
	"sort"
)

// ErrStateSpaceExceeded is returned when exploration hits its state budget
// before exhausting the reachability set.
var ErrStateSpaceExceeded = errors.New("petri: state space budget exceeded")

// ReachEdge is an edge of the reachability graph: firing Transition in the
// marking with key From yields the marking with key To.
type ReachEdge struct {
	From       string
	Transition TransitionID
	Rule       FireRule
	To         string
}

// ReachabilityGraph is the explored state space of a net from an initial
// marking.
type ReachabilityGraph struct {
	Initial  Marking
	States   map[string]Marking
	Edges    []ReachEdge
	Complete bool // false when the exploration budget was exhausted
}

// Reachability explores the state space from initial, firing under both the
// normal and priority rules, up to maxStates distinct markings. When the
// budget is exceeded the partial graph is returned along with
// ErrStateSpaceExceeded.
func (n *Net) Reachability(initial Marking, maxStates int) (*ReachabilityGraph, error) {
	g := &ReachabilityGraph{
		Initial:  initial.Clone(),
		States:   make(map[string]Marking),
		Complete: true,
	}
	start := initial.Clone()
	g.States[start.Key()] = start
	queue := []Marking{start}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		fromKey := m.Key()
		for _, t := range n.transitionOrder {
			for _, rule := range n.applicableRules(m, t) {
				next := m.Clone()
				ev, err := n.fireWithRule(next, t, rule)
				if err != nil {
					continue
				}
				key := next.Key()
				g.Edges = append(g.Edges, ReachEdge{From: fromKey, Transition: t, Rule: ev.Rule, To: key})
				if _, seen := g.States[key]; !seen {
					if len(g.States) >= maxStates {
						g.Complete = false
						return g, fmt.Errorf("%w: %d states", ErrStateSpaceExceeded, maxStates)
					}
					g.States[key] = next
					queue = append(queue, next)
				}
			}
		}
	}
	return g, nil
}

// applicableRules lists the distinct firing rules applicable to t in m.
// When the normal rule applies, the priority rule would consume the same
// tokens, so only the normal rule is reported; the priority rule is
// reported alone when only Ip(t) is covered.
func (n *Net) applicableRules(m Marking, t TransitionID) []FireRule {
	switch {
	case n.EnabledNormal(m, t):
		return []FireRule{FireNormal}
	case n.EnabledPriority(m, t):
		return []FireRule{FirePriority}
	default:
		return nil
	}
}

func (n *Net) fireWithRule(m Marking, t TransitionID, rule FireRule) (FireEvent, error) {
	// Fire chooses normal before priority, matching applicableRules.
	ev, err := n.Fire(m, t)
	if err != nil {
		return FireEvent{}, err
	}
	if ev.Rule != rule {
		return FireEvent{}, fmt.Errorf("%w: wanted rule %v, fired %v", ErrNotEnabled, rule, ev.Rule)
	}
	return ev, nil
}

// Deadlocks returns the keys of reachable markings with no enabled
// transition, in sorted order.
func (g *ReachabilityGraph) Deadlocks(n *Net) []string {
	var out []string
	for key, m := range g.States {
		if len(n.EnabledSet(m)) == 0 {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Bound returns the maximum token count observed on place p across the
// explored states.
func (g *ReachabilityGraph) Bound(p PlaceID) int {
	max := 0
	for _, m := range g.States {
		if n := m.Tokens(p); n > max {
			max = n
		}
	}
	return max
}

// IsKBounded reports whether every place holds at most k tokens in every
// explored state. Only meaningful when Complete is true.
func (g *ReachabilityGraph) IsKBounded(k int) bool {
	for _, m := range g.States {
		for _, tokens := range m {
			if tokens > k {
				return false
			}
		}
	}
	return true
}

// IsSafe reports 1-boundedness, the classic safety property of
// presentation nets (OCPN nets are safe by construction).
func (g *ReachabilityGraph) IsSafe() bool { return g.IsKBounded(1) }

// IsConservative reports whether the total token count is invariant across
// all explored states (conservation with unit weights).
func (g *ReachabilityGraph) IsConservative() bool {
	first := true
	want := 0
	for _, m := range g.States {
		if first {
			want, first = m.Total(), false
			continue
		}
		if m.Total() != want {
			return false
		}
	}
	return true
}

// LiveTransitions returns the transitions that fire on at least one edge of
// the explored graph (L1-liveness witnesses), sorted.
func (g *ReachabilityGraph) LiveTransitions() []TransitionID {
	seen := make(map[TransitionID]bool)
	for _, e := range g.Edges {
		seen[e.Transition] = true
	}
	out := make([]TransitionID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeadTransitions returns the net's transitions that never fire in the
// explored graph (L0-dead), sorted by insertion order.
func (g *ReachabilityGraph) DeadTransitions(n *Net) []TransitionID {
	live := make(map[TransitionID]bool)
	for _, e := range g.Edges {
		live[e.Transition] = true
	}
	var out []TransitionID
	for _, t := range n.Transitions() {
		if !live[t] {
			out = append(out, t)
		}
	}
	return out
}

// Reaches reports whether a marking satisfying pred is reachable in the
// explored graph.
func (g *ReachabilityGraph) Reaches(pred func(Marking) bool) bool {
	for _, m := range g.States {
		if pred(m) {
			return true
		}
	}
	return false
}
