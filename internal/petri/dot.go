package petri

import (
	"fmt"
	"strings"
)

// DOT renders the net (with an optional marking; pass nil for none) in
// Graphviz DOT format: circles for places, boxes for transitions, bold red
// edges for priority input arcs, and token counts as place annotations.
// This reproduces diagrams in the style of the paper's Figure 1.
func (n *Net) DOT(name string, m Marking) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", name)
	for _, p := range n.placeOrder {
		place := n.places[p]
		label := string(p)
		if place.Label != "" {
			label += "\\n" + place.Label
		}
		if m != nil {
			if tokens := m.Tokens(p); tokens > 0 {
				label += fmt.Sprintf("\\n●×%d", tokens)
			}
		}
		fmt.Fprintf(&sb, "  %q [shape=circle, label=%q];\n", "p_"+string(p), label)
	}
	for _, t := range n.transitionOrder {
		tr := n.transitions[t]
		label := string(t)
		if tr.Label != "" {
			label += "\\n" + tr.Label
		}
		fmt.Fprintf(&sb, "  %q [shape=box, style=filled, fillcolor=gray90, label=%q];\n", "t_"+string(t), label)
	}
	writeArcs := func(arcs map[TransitionID]Bag, reversed bool, attrs string) {
		for _, t := range n.transitionOrder {
			bag := arcs[t]
			for _, p := range bag.Places() {
				w := bag.Count(p)
				extra := attrs
				if w > 1 {
					if extra != "" {
						extra += ", "
					}
					extra += fmt.Sprintf("label=\"%d\"", w)
				}
				if extra != "" {
					extra = " [" + extra + "]"
				}
				if reversed {
					fmt.Fprintf(&sb, "  %q -> %q%s;\n", "t_"+string(t), "p_"+string(p), extra)
				} else {
					fmt.Fprintf(&sb, "  %q -> %q%s;\n", "p_"+string(p), "t_"+string(t), extra)
				}
			}
		}
	}
	writeArcs(n.input, false, "")
	writeArcs(n.priority, false, "color=red, penwidth=2")
	writeArcs(n.output, true, "")
	sb.WriteString("}\n")
	return sb.String()
}
