package ocpn

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/media"
)

func startsOf(t *testing.T, tl Timeline) map[string]time.Duration {
	t.Helper()
	out := make(map[string]time.Duration)
	for _, it := range tl.Items {
		out[it.Object.ID] = it.Start
	}
	return out
}

func TestSolveEquals(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Audio, 5*time.Second),
			obj("b", media.Video, 5*time.Second),
		},
		Constraints: []Constraint{{A: "a", B: "b", Rel: Equals}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	if s["a"] != 0 || s["b"] != 0 {
		t.Errorf("starts = %v", s)
	}
}

func TestSolveEqualsDurationMismatch(t *testing.T) {
	_, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Audio, 5*time.Second),
			obj("b", media.Video, 6*time.Second),
		},
		Constraints: []Constraint{{A: "a", B: "b", Rel: Equals}},
	})
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveBeforeAndMeets(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Text, 2*time.Second),
			obj("b", media.Text, 3*time.Second),
			obj("c", media.Text, time.Second),
		},
		Constraints: []Constraint{
			{A: "a", B: "b", Rel: Before, Gap: time.Second},
			{A: "b", B: "c", Rel: Meets},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	if s["a"] != 0 || s["b"] != 3*time.Second || s["c"] != 6*time.Second {
		t.Errorf("starts = %v", s)
	}
}

func TestSolveOverlaps(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Video, 10*time.Second),
			obj("b", media.Audio, 8*time.Second),
		},
		Constraints: []Constraint{{A: "a", B: "b", Rel: Overlaps, Gap: 3 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	if s["b"] != 7*time.Second {
		t.Errorf("b start = %v, want 7s", s["b"])
	}
}

func TestSolveOverlapsPrecondition(t *testing.T) {
	for _, gap := range []time.Duration{0, 10 * time.Second, 15 * time.Second} {
		_, err := Solve(Spec{
			Objects: []media.Object{
				obj("a", media.Video, 10*time.Second),
				obj("b", media.Audio, 8*time.Second),
			},
			Constraints: []Constraint{{A: "a", B: "b", Rel: Overlaps, Gap: gap}},
		})
		if !errors.Is(err, ErrInconsistent) {
			t.Errorf("gap %v: err = %v", gap, err)
		}
	}
}

func TestSolveDuring(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("movie", media.Video, 20*time.Second),
			obj("caption", media.Text, 5*time.Second),
		},
		Constraints: []Constraint{{A: "movie", B: "caption", Rel: During, Gap: 3 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if startsOf(t, tl)["caption"] != 3*time.Second {
		t.Errorf("caption start wrong")
	}
	// Violates offset+dB < dA.
	_, err = Solve(Spec{
		Objects: []media.Object{
			obj("movie", media.Video, 20*time.Second),
			obj("caption", media.Text, 19*time.Second),
		},
		Constraints: []Constraint{{A: "movie", B: "caption", Rel: During, Gap: 3 * time.Second}},
	})
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveStartsFinishes(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("intro", media.Audio, 3*time.Second),
			obj("video", media.Video, 10*time.Second),
			obj("outro", media.Audio, 4*time.Second),
		},
		Constraints: []Constraint{
			{A: "intro", B: "video", Rel: Starts},
			{A: "outro", B: "video", Rel: Finishes},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	if s["intro"] != 0 || s["video"] != 0 {
		t.Errorf("starts: %v", s)
	}
	if s["outro"] != 6*time.Second {
		t.Errorf("outro = %v, want 6s (ends with video)", s["outro"])
	}
}

func TestSolveStartsRequiresShorterA(t *testing.T) {
	_, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Audio, 10*time.Second),
			obj("b", media.Video, 5*time.Second),
		},
		Constraints: []Constraint{{A: "a", B: "b", Rel: Starts}},
	})
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveReversePropagation(t *testing.T) {
	// Constraint direction b→a with only a anchored: needs the inverse.
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Text, 2*time.Second),
			obj("b", media.Text, 2*time.Second),
		},
		Constraints: []Constraint{{A: "b", B: "a", Rel: Meets}},
		Anchor:      "a",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	// b meets a: a starts when b ends. After normalization b=0, a=2s.
	if s["b"] != 0 || s["a"] != 2*time.Second {
		t.Errorf("starts = %v", s)
	}
}

func TestSolveChainNormalizesNegativeStarts(t *testing.T) {
	// Anchored at "late", the derived "early" would start negative;
	// Solve must shift the whole timeline to zero.
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("early", media.Text, 2*time.Second),
			obj("late", media.Text, 2*time.Second),
		},
		Constraints: []Constraint{{A: "early", B: "late", Rel: Before, Gap: time.Second}},
		Anchor:      "late",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := startsOf(t, tl)
	if s["early"] != 0 || s["late"] != 3*time.Second {
		t.Errorf("starts = %v", s)
	}
}

func TestSolveUnsolvable(t *testing.T) {
	_, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Text, time.Second),
			obj("island", media.Text, time.Second),
		},
	})
	if !errors.Is(err, ErrUnsolvable) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveConflict(t *testing.T) {
	_, err := Solve(Spec{
		Objects: []media.Object{
			obj("a", media.Text, 2*time.Second),
			obj("b", media.Text, 2*time.Second),
		},
		Constraints: []Constraint{
			{A: "a", B: "b", Rel: Meets},                    // b at 2s
			{A: "a", B: "b", Rel: Before, Gap: time.Second}, // b at 3s — contradiction
		},
	})
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveUnknownObjectAndAnchor(t *testing.T) {
	_, err := Solve(Spec{
		Objects:     []media.Object{obj("a", media.Text, time.Second)},
		Constraints: []Constraint{{A: "a", B: "ghost", Rel: Meets}},
	})
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("constraint: %v", err)
	}
	_, err = Solve(Spec{
		Objects: []media.Object{obj("a", media.Text, time.Second)},
		Anchor:  "ghost",
	})
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("anchor: %v", err)
	}
}

func TestSolveThenCompileRoundTrip(t *testing.T) {
	tl, err := Solve(Spec{
		Objects: []media.Object{
			obj("slide", media.Image, 10*time.Second),
			obj("narration", media.Audio, 10*time.Second),
			obj("clip", media.Video, 5*time.Second),
		},
		Constraints: []Constraint{
			{A: "slide", B: "narration", Rel: Equals},
			{A: "slide", B: "clip", Rel: Meets},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	sets := net.DeriveSchedule().SyncSets()
	if len(sets) != 2 {
		t.Errorf("sync sets = %+v", sets)
	}
}

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		Equals: "equals", Before: "before", Meets: "meets",
		Overlaps: "overlaps", During: "during", Starts: "starts", Finishes: "finishes",
	} {
		if r.String() != want {
			t.Errorf("%d: %q", int(r), r.String())
		}
	}
	if Relation(99).String() != "Relation(99)" {
		t.Error("unknown relation string")
	}
}
