package ocpn

import (
	"context"
	"sync"
	"testing"
	"time"

	"dmps/internal/clock"
	"dmps/internal/media"
)

func TestPlayerRunsToCompletionOnSimClock(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	sim := clock.NewSim(origin)
	player := NewPlayer(net, sim)

	var mu sync.Mutex
	var events []PlayoutEvent
	player.OnEvent = func(ev PlayoutEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}

	done := make(chan error, 1)
	go func() {
		_, err := player.Run(context.Background())
		done <- err
	}()
	// Drive simulated time until the run finishes.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			goto check
		case <-deadline:
			t.Fatal("playout never finished")
		default:
			if sim.Waiters() > 0 {
				sim.Advance(time.Second)
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
check:
	mu.Lock()
	defer mu.Unlock()
	var transitions, segments int
	var clipStart time.Time
	for _, ev := range events {
		if ev.Transition != "" {
			transitions++
		}
		if ev.Place != nil {
			segments++
			if ev.Place.Object.ID == "clip" {
				clipStart = ev.At
			}
		}
	}
	if transitions != 3 {
		t.Errorf("transitions = %d, want 3", transitions)
	}
	if segments != 3 {
		t.Errorf("segments = %d, want 3", segments)
	}
	if want := origin.Add(10 * time.Second); !clipStart.Equal(want) {
		t.Errorf("clip started at %v, want %v", clipStart, want)
	}
}

func TestPlayerRealClockShortPresentation(t *testing.T) {
	tl := Timeline{Items: []ScheduledObject{
		{Object: obj("a", media.Text, 5*time.Millisecond), Start: 0},
		{Object: obj("b", media.Text, 5*time.Millisecond), Start: 5 * time.Millisecond},
	}}
	net, err := Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	player := NewPlayer(net, clock.Real{})
	start := time.Now()
	m, err := player.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !net.Finished(m) {
		t.Error("not finished")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("finished in %v, schedule says >= 10ms", elapsed)
	}
}

func TestPlayerCancellation(t *testing.T) {
	tl := Timeline{Items: []ScheduledObject{
		{Object: obj("long", media.Video, time.Hour), Start: 0},
	}}
	net, err := Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	player := NewPlayer(net, clock.Real{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := player.Run(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled run should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not observe cancellation")
	}
}

func TestPlayerScheduleAccessor(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(net, clock.Real{})
	if p.Schedule().Total != 15*time.Second {
		t.Errorf("Total = %v", p.Schedule().Total)
	}
}
