package ocpn

import (
	"errors"
	"fmt"
	"time"

	"dmps/internal/media"
)

// Relation is one of Allen's temporal interval relations between two media
// objects A and B. The seven canonical relations are provided; the six
// inverses are expressed by swapping the operands.
type Relation int

const (
	// Equals: A and B start and end together (durations must match).
	Equals Relation = iota + 1
	// Before: B starts Gap after A ends (Gap ≥ 0; Gap = 0 degenerates to
	// Meets).
	Before
	// Meets: B starts exactly when A ends.
	Meets
	// Overlaps: B starts Gap before A ends and outlives A
	// (0 < Gap < min(dA, dB)).
	Overlaps
	// During: B runs strictly inside A, starting Gap after A starts
	// (Gap > 0, Gap + dB < dA).
	During
	// Starts: A and B start together and A ends first (dA < dB).
	Starts
	// Finishes: A and B end together and A starts later (dA < dB).
	Finishes
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case Equals:
		return "equals"
	case Before:
		return "before"
	case Meets:
		return "meets"
	case Overlaps:
		return "overlaps"
	case During:
		return "during"
	case Starts:
		return "starts"
	case Finishes:
		return "finishes"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint relates object A to object B by Rel. Gap carries the
// relation's free parameter: the lead for Before, the overlap for
// Overlaps, and the offset for During; it is ignored elsewhere.
type Constraint struct {
	A, B string
	Rel  Relation
	Gap  time.Duration
}

// Spec is a relation-based presentation specification: a set of media
// objects plus pairwise Allen constraints. One object (Anchor, or the
// first object when empty) is pinned to presentation time zero; every
// other object's start time must be derivable through the constraint
// graph.
type Spec struct {
	Objects     []media.Object
	Constraints []Constraint
	Anchor      string
}

// Specification errors.
var (
	// ErrUnknownObject is returned when a constraint names an object not
	// in the spec.
	ErrUnknownObject = errors.New("ocpn: constraint references unknown object")
	// ErrUnsolvable is returned when some object's start time is not
	// determined by the constraint graph.
	ErrUnsolvable = errors.New("ocpn: under-constrained specification")
	// ErrInconsistent is returned when constraints contradict each other
	// or a relation's duration precondition fails.
	ErrInconsistent = errors.New("ocpn: inconsistent specification")
)

// startOf computes B's start from A's, or A's from B's (reverse), for one
// constraint. It also validates the relation's duration preconditions.
func startOf(c Constraint, dA, dB time.Duration, startA time.Duration) (time.Duration, error) {
	switch c.Rel {
	case Equals:
		if dA != dB {
			return 0, fmt.Errorf("%w: %s equals %s but durations %v != %v", ErrInconsistent, c.A, c.B, dA, dB)
		}
		return startA, nil
	case Before:
		if c.Gap < 0 {
			return 0, fmt.Errorf("%w: before gap %v < 0", ErrInconsistent, c.Gap)
		}
		return startA + dA + c.Gap, nil
	case Meets:
		return startA + dA, nil
	case Overlaps:
		if c.Gap <= 0 || c.Gap >= dA || c.Gap >= dB {
			return 0, fmt.Errorf("%w: overlaps needs 0 < overlap < min(durations); got %v (dA=%v dB=%v)", ErrInconsistent, c.Gap, dA, dB)
		}
		return startA + dA - c.Gap, nil
	case During:
		if c.Gap <= 0 || c.Gap+dB >= dA {
			return 0, fmt.Errorf("%w: during needs 0 < offset and offset+dB < dA; got offset=%v dB=%v dA=%v", ErrInconsistent, c.Gap, dB, dA)
		}
		return startA + c.Gap, nil
	case Starts:
		if dA >= dB {
			return 0, fmt.Errorf("%w: starts needs dA < dB; got %v >= %v", ErrInconsistent, dA, dB)
		}
		return startA, nil
	case Finishes:
		if dA >= dB {
			return 0, fmt.Errorf("%w: finishes needs dA < dB; got %v >= %v", ErrInconsistent, dA, dB)
		}
		return startA + dA - dB, nil
	default:
		return 0, fmt.Errorf("%w: unknown relation %d", ErrInconsistent, int(c.Rel))
	}
}

// invert computes A's start given B's for one constraint.
func invert(c Constraint, dA, dB time.Duration, startB time.Duration) (time.Duration, error) {
	// Solve startB = f(startA) for startA; every relation is a pure
	// translation so the inverse subtracts the same amount.
	zero, err := startOf(c, dA, dB, 0)
	if err != nil {
		return 0, err
	}
	return startB - zero, nil
}

// Solve computes the absolute timeline from a relation specification via
// constraint propagation from the anchor. It returns ErrUnsolvable when
// the constraint graph does not reach every object, and ErrInconsistent
// when two derivations disagree or the timeline would start before zero.
func Solve(spec Spec) (Timeline, error) {
	if len(spec.Objects) == 0 {
		return Timeline{}, ErrEmptyTimeline
	}
	durations := make(map[string]time.Duration, len(spec.Objects))
	objects := make(map[string]media.Object, len(spec.Objects))
	for _, o := range spec.Objects {
		if err := o.Validate(); err != nil {
			return Timeline{}, fmt.Errorf("%w: %v", ErrBadTimeline, err)
		}
		if _, dup := objects[o.ID]; dup {
			return Timeline{}, fmt.Errorf("%w: duplicate object %q", ErrBadTimeline, o.ID)
		}
		objects[o.ID] = o
		durations[o.ID] = o.Duration
	}
	for _, c := range spec.Constraints {
		if _, ok := objects[c.A]; !ok {
			return Timeline{}, fmt.Errorf("%w: %q", ErrUnknownObject, c.A)
		}
		if _, ok := objects[c.B]; !ok {
			return Timeline{}, fmt.Errorf("%w: %q", ErrUnknownObject, c.B)
		}
	}
	anchor := spec.Anchor
	if anchor == "" {
		anchor = spec.Objects[0].ID
	}
	if _, ok := objects[anchor]; !ok {
		return Timeline{}, fmt.Errorf("%w: anchor %q", ErrUnknownObject, anchor)
	}

	starts := map[string]time.Duration{anchor: 0}
	// Propagate until fixpoint (constraint count bounds the iterations).
	for iter := 0; iter <= len(spec.Constraints); iter++ {
		changed := false
		for _, c := range spec.Constraints {
			dA, dB := durations[c.A], durations[c.B]
			sa, haveA := starts[c.A]
			sb, haveB := starts[c.B]
			switch {
			case haveA && !haveB:
				v, err := startOf(c, dA, dB, sa)
				if err != nil {
					return Timeline{}, err
				}
				starts[c.B] = v
				changed = true
			case !haveA && haveB:
				v, err := invert(c, dA, dB, sb)
				if err != nil {
					return Timeline{}, err
				}
				starts[c.A] = v
				changed = true
			case haveA && haveB:
				want, err := startOf(c, dA, dB, sa)
				if err != nil {
					return Timeline{}, err
				}
				if want != sb {
					return Timeline{}, fmt.Errorf("%w: %s %v %s gives start %v but %v already derived",
						ErrInconsistent, c.A, c.Rel, c.B, want, sb)
				}
			}
		}
		if !changed {
			break
		}
	}
	var missing []string
	for id := range objects {
		if _, ok := starts[id]; !ok {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		return Timeline{}, fmt.Errorf("%w: no start derivable for %v", ErrUnsolvable, missing)
	}
	// Normalize so the earliest start is zero, then reject negatives
	// (impossible after normalization, kept as a safety check).
	min := starts[anchor]
	for _, s := range starts {
		if s < min {
			min = s
		}
	}
	var tl Timeline
	for _, o := range spec.Objects {
		tl.Items = append(tl.Items, ScheduledObject{Object: o, Start: starts[o.ID] - min})
	}
	if err := tl.Validate(); err != nil {
		return Timeline{}, err
	}
	return tl, nil
}
