package ocpn

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dmps/internal/media"
)

func obj(id string, kind media.Kind, dur time.Duration) media.Object {
	o := media.Object{ID: id, Kind: kind, Duration: dur, UnitBytes: 100}
	if kind.Continuous() {
		o.Rate = 10
	}
	return o
}

// lectureTimeline is the paper's Figure-1-style scenario: a slide image
// with narration audio, then a video clip.
func lectureTimeline() Timeline {
	return Timeline{Items: []ScheduledObject{
		{Object: obj("slide", media.Image, 10*time.Second), Start: 0},
		{Object: obj("narration", media.Audio, 10*time.Second), Start: 0},
		{Object: obj("clip", media.Video, 5*time.Second), Start: 10 * time.Second},
	}}
}

func TestTimelineValidate(t *testing.T) {
	if err := lectureTimeline().Validate(); err != nil {
		t.Errorf("valid timeline rejected: %v", err)
	}
	var empty Timeline
	if err := empty.Validate(); !errors.Is(err, ErrEmptyTimeline) {
		t.Errorf("empty: %v", err)
	}
	bad := Timeline{Items: []ScheduledObject{
		{Object: obj("x", media.Text, time.Second), Start: -time.Second},
	}}
	if err := bad.Validate(); !errors.Is(err, ErrBadTimeline) {
		t.Errorf("negative start: %v", err)
	}
	dup := Timeline{Items: []ScheduledObject{
		{Object: obj("x", media.Text, time.Second)},
		{Object: obj("x", media.Text, time.Second)},
	}}
	if err := dup.Validate(); !errors.Is(err, ErrBadTimeline) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestTimelineEnd(t *testing.T) {
	if got := lectureTimeline().End(); got != 15*time.Second {
		t.Errorf("End = %v", got)
	}
}

func TestCompileStructure(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries: 0, 10s, 15s.
	if len(net.Boundaries) != 3 {
		t.Fatalf("boundaries = %v", net.Boundaries)
	}
	if len(net.Transitions) != 3 {
		t.Fatalf("transitions = %v", net.Transitions)
	}
	if err := net.Base.Validate(); err != nil {
		t.Errorf("base net invalid: %v", err)
	}
	// slide and narration: 1 segment each; clip: 1 segment.
	mp := net.MediaPlaces()
	if len(mp) != 3 {
		t.Fatalf("media places = %d", len(mp))
	}
	if mp[0].Object.ID != "clip" || mp[1].Object.ID != "narration" || mp[2].Object.ID != "slide" {
		t.Errorf("order: %s %s %s", mp[0].Object.ID, mp[1].Object.ID, mp[2].Object.ID)
	}
}

func TestCompileSplitsSpanningIntervals(t *testing.T) {
	// b overlaps a boundary introduced by c's start: must split into
	// segments.
	tl := Timeline{Items: []ScheduledObject{
		{Object: obj("long", media.Video, 10*time.Second), Start: 0},
		{Object: obj("mid", media.Audio, 4*time.Second), Start: 3 * time.Second},
	}}
	net, err := Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries 0, 3, 7, 10 → long has 3 segments, mid 1.
	var longSegs, midSegs int
	for _, p := range net.MediaPlaces() {
		switch p.Object.ID {
		case "long":
			longSegs++
		case "mid":
			midSegs++
		}
	}
	if longSegs != 3 || midSegs != 1 {
		t.Errorf("segments: long=%d mid=%d, want 3/1", longSegs, midSegs)
	}
	// Segment offsets must tile the object.
	var offsets []time.Duration
	for _, p := range net.MediaPlaces() {
		if p.Object.ID == "long" {
			offsets = append(offsets, p.Offset)
		}
	}
	want := []time.Duration{0, 3 * time.Second, 7 * time.Second}
	for i, o := range offsets {
		if o != want[i] {
			t.Errorf("offset[%d] = %v, want %v", i, o, want[i])
		}
	}
}

func TestCompileGapsGetDelayPlaces(t *testing.T) {
	tl := Timeline{Items: []ScheduledObject{
		{Object: obj("a", media.Text, 2*time.Second), Start: 0},
		{Object: obj("b", media.Text, 2*time.Second), Start: 5 * time.Second},
	}}
	net, err := Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	foundDelay := false
	for id, p := range net.Places {
		if strings.HasPrefix(string(id), "p_delay_") {
			foundDelay = true
			if p.Duration != 3*time.Second {
				t.Errorf("delay duration = %v, want 3s", p.Duration)
			}
		}
	}
	if !foundDelay {
		t.Error("gap should produce a delay place")
	}
	if err := net.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestCompileRejectsEmpty(t *testing.T) {
	if _, err := Compile(Timeline{}); !errors.Is(err, ErrEmptyTimeline) {
		t.Errorf("err = %v", err)
	}
}

func TestCompiledNetIsSafeAndLive(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.Base.Reachability(net.InitialMarking(), 10_000)
	if err != nil {
		t.Fatalf("reachability: %v", err)
	}
	if !g.IsSafe() {
		t.Error("compiled OCPN must be 1-safe")
	}
	if dead := g.DeadTransitions(net.Base); len(dead) != 0 {
		t.Errorf("dead transitions: %v", dead)
	}
	if !g.Reaches(net.Finished) {
		t.Error("end place must be reachable")
	}
}

func TestDeriveScheduleMatchesBoundaries(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	s := net.DeriveSchedule()
	want := []time.Duration{0, 10 * time.Second, 15 * time.Second}
	for i, at := range s.FireAt {
		if at != want[i] {
			t.Errorf("FireAt[%d] = %v, want %v", i, at, want[i])
		}
	}
	if s.Total != 15*time.Second {
		t.Errorf("Total = %v", s.Total)
	}
	if s.ObjectStart["clip"] != 10*time.Second {
		t.Errorf("clip start = %v", s.ObjectStart["clip"])
	}
}

func TestSyncSets(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	sets := net.DeriveSchedule().SyncSets()
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if sets[0].At != 0 || len(sets[0].Objects) != 2 ||
		sets[0].Objects[0] != "narration" || sets[0].Objects[1] != "slide" {
		t.Errorf("set0 = %+v", sets[0])
	}
	if sets[1].At != 10*time.Second || sets[1].Objects[0] != "clip" {
		t.Errorf("set1 = %+v", sets[1])
	}
}

func TestVerifyPassesForCompiledNets(t *testing.T) {
	for _, tl := range []Timeline{
		lectureTimeline(),
		{Items: []ScheduledObject{{Object: obj("solo", media.Video, time.Second)}}},
	} {
		net, err := Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Verify(); err != nil {
			t.Errorf("Verify: %v", err)
		}
	}
}

func TestTimetableString(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	table := net.DeriveSchedule().TimetableString()
	for _, want := range []string{"fire t0", "start narration, slide", "start clip"} {
		if !strings.Contains(table, want) {
			t.Errorf("timetable missing %q:\n%s", want, table)
		}
	}
}

func TestDOTIncludesMediaLabels(t *testing.T) {
	net, err := Compile(lectureTimeline())
	if err != nil {
		t.Fatal(err)
	}
	dot := net.DOT("lecture")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "slide") {
		t.Errorf("DOT output:\n%s", dot)
	}
}
