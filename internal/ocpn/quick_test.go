package ocpn

import (
	"math/rand"
	"testing"
	"time"

	"dmps/internal/media"
)

// randomTimeline builds a valid random timeline: 1–6 objects with
// positive durations and non-negative starts on a 100ms grid.
func randomTimeline(rng *rand.Rand) Timeline {
	n := 1 + rng.Intn(6)
	var tl Timeline
	kinds := []media.Kind{media.Text, media.Image, media.Audio, media.Video}
	for i := 0; i < n; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		obj := media.Object{
			ID:       string(rune('a' + i)),
			Kind:     kind,
			Duration: time.Duration(1+rng.Intn(50)) * 100 * time.Millisecond,
		}
		if kind.Continuous() {
			obj.Rate = 10
		}
		tl.Items = append(tl.Items, ScheduledObject{
			Object: obj,
			Start:  time.Duration(rng.Intn(30)) * 100 * time.Millisecond,
		})
	}
	return tl
}

// TestQuickCompileAlwaysVerifies: every valid timeline compiles into a
// net whose derived schedule reproduces the declared starts exactly.
func TestQuickCompileAlwaysVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(2001))
	for iter := 0; iter < 300; iter++ {
		tl := randomTimeline(rng)
		net, err := Compile(tl)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v (timeline %+v)", iter, err, tl)
		}
		if err := net.Verify(); err != nil {
			t.Fatalf("iter %d: Verify: %v", iter, err)
		}
	}
}

// TestQuickCompiledNetsAreSafeAndTerminate: compiled nets are 1-safe,
// have no dead transitions and always reach the end place.
func TestQuickCompiledNetsAreSafeAndTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(4001))
	for iter := 0; iter < 100; iter++ {
		tl := randomTimeline(rng)
		net, err := Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		g, err := net.Base.Reachability(net.InitialMarking(), 100_000)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !g.IsSafe() {
			t.Fatalf("iter %d: net not safe", iter)
		}
		if dead := g.DeadTransitions(net.Base); len(dead) != 0 {
			t.Fatalf("iter %d: dead transitions %v", iter, dead)
		}
		if !g.Reaches(net.Finished) {
			t.Fatalf("iter %d: end unreachable", iter)
		}
	}
}

// TestQuickSegmentsTileObjects: for every object, its segments' offsets
// and durations exactly tile [0, duration) with no gaps or overlaps.
func TestQuickSegmentsTileObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(6001))
	for iter := 0; iter < 200; iter++ {
		tl := randomTimeline(rng)
		net, err := Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		type seg struct {
			offset, dur time.Duration
		}
		byObject := make(map[string][]seg)
		for _, p := range net.MediaPlaces() {
			byObject[p.Object.ID] = append(byObject[p.Object.ID], seg{p.Offset, p.Duration})
		}
		for _, it := range tl.Items {
			segs := byObject[it.Object.ID]
			if len(segs) == 0 {
				t.Fatalf("iter %d: object %s has no segments", iter, it.Object.ID)
			}
			// MediaPlaces sorts by segment index; offsets must chain.
			var cursor time.Duration
			for i, s := range segs {
				if s.offset != cursor {
					t.Fatalf("iter %d: %s segment %d offset %v, want %v", iter, it.Object.ID, i, s.offset, cursor)
				}
				if s.dur <= 0 {
					t.Fatalf("iter %d: %s segment %d non-positive duration", iter, it.Object.ID, i)
				}
				cursor += s.dur
			}
			if cursor != it.Object.Duration {
				t.Fatalf("iter %d: %s tiles %v, want %v", iter, it.Object.ID, cursor, it.Object.Duration)
			}
		}
	}
}

// TestQuickSyncSetsCoverAllObjects: every object appears in exactly one
// synchronous set, at its declared (normalized) start.
func TestQuickSyncSetsCoverAllObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(8001))
	for iter := 0; iter < 200; iter++ {
		tl := randomTimeline(rng)
		net, err := Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		sets := net.DeriveSchedule().SyncSets()
		seen := make(map[string]int)
		for _, set := range sets {
			for _, id := range set.Objects {
				seen[id]++
			}
		}
		for _, it := range tl.Items {
			if seen[it.Object.ID] != 1 {
				t.Fatalf("iter %d: object %s in %d sync sets", iter, it.Object.ID, seen[it.Object.ID])
			}
		}
	}
}

// TestQuickScheduleTotalMatchesTimelineSpan: the derived total equals the
// distance from the earliest start to the latest end.
func TestQuickScheduleTotalMatchesTimelineSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(10001))
	for iter := 0; iter < 200; iter++ {
		tl := randomTimeline(rng)
		net, err := Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		min := tl.Items[0].Start
		var max time.Duration
		for _, it := range tl.Items {
			if it.Start < min {
				min = it.Start
			}
			if e := it.End(); e > max {
				max = e
			}
		}
		want := max - min
		if got := net.DeriveSchedule().Total; got != want {
			t.Fatalf("iter %d: Total = %v, want %v", iter, got, want)
		}
	}
}
