package ocpn

import (
	"context"
	"fmt"
	"time"

	"dmps/internal/clock"
	"dmps/internal/petri"
)

// PlayoutEvent is emitted by Player as the presentation executes.
type PlayoutEvent struct {
	// At is the wall/sim instant of the event.
	At time.Time
	// Offset is the presentation-time offset.
	Offset time.Duration
	// Transition is the synchronization transition that fired ("" for
	// segment events).
	Transition petri.TransitionID
	// Place is the media segment that started (nil for transition events).
	Place *Place
}

// Player executes a compiled OCPN on a single site over a Clock, firing
// each synchronization transition at its scheduled offset and reporting
// segment starts. It honours the token semantics by driving the
// underlying petri marking and verifying enabledness before each firing.
type Player struct {
	net   *Net
	clk   clock.Clock
	sched Schedule
	// OnEvent, when non-nil, receives every playout event synchronously.
	OnEvent func(PlayoutEvent)
}

// NewPlayer returns a player for the net over clk.
func NewPlayer(net *Net, clk clock.Clock) *Player {
	return &Player{net: net, clk: clk, sched: net.DeriveSchedule()}
}

// Schedule exposes the derived schedule.
func (p *Player) Schedule() Schedule { return p.sched }

// Run plays the presentation to completion, or until ctx is cancelled.
// It returns the final marking.
func (p *Player) Run(ctx context.Context) (petri.Marking, error) {
	m := p.net.InitialMarking()
	start := p.clk.Now()
	for i, t := range p.net.Transitions {
		target := start.Add(p.sched.FireAt[i])
		if wait := target.Sub(p.clk.Now()); wait > 0 {
			select {
			case <-ctx.Done():
				return m, fmt.Errorf("ocpn: playout cancelled before %s: %w", t, ctx.Err())
			case <-p.clk.After(wait):
			}
		}
		if !p.net.Base.Enabled(m, t) {
			return m, fmt.Errorf("ocpn: %s not enabled at its scheduled time (marking %s)", t, m)
		}
		ev, err := p.net.Base.Fire(m, t)
		if err != nil {
			return m, fmt.Errorf("ocpn: %w", err)
		}
		now := p.clk.Now()
		p.emit(PlayoutEvent{At: now, Offset: p.sched.FireAt[i], Transition: t})
		for _, placeID := range ev.Produced.Places() {
			info := p.net.Places[placeID]
			if info != nil && info.IsMedia() {
				p.emit(PlayoutEvent{At: now, Offset: p.sched.FireAt[i], Place: info})
			}
		}
	}
	// Let the final segments (inputs of no further transition) finish.
	if tail := p.tailDuration(); tail > 0 {
		select {
		case <-ctx.Done():
			return m, fmt.Errorf("ocpn: playout cancelled during tail: %w", ctx.Err())
		case <-p.clk.After(tail):
		}
	}
	if !p.net.Finished(m) {
		return m, fmt.Errorf("ocpn: presentation ended without reaching %s (marking %s)", p.net.End, m)
	}
	return m, nil
}

// tailDuration is the longest lock beyond the final transition. Nets
// compiled by Compile end every segment at the last boundary, so this is
// normally zero; it guards hand-built nets.
func (p *Player) tailDuration() time.Duration {
	last := p.net.Transitions[len(p.net.Transitions)-1]
	var max time.Duration
	for _, placeID := range p.net.Base.Output(last).Places() {
		if info := p.net.Places[placeID]; info != nil && info.Duration > max {
			max = info.Duration
		}
	}
	return max
}

func (p *Player) emit(ev PlayoutEvent) {
	if p.OnEvent != nil {
		p.OnEvent(ev)
	}
}
