package ocpn

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Schedule is the deterministic firing plan derived from a compiled net:
// when each synchronization transition fires and when each media segment
// begins, assuming ideal (zero-delay, perfectly synchronized) execution.
type Schedule struct {
	// FireAt[i] is the ideal firing time of Net.Transitions[i].
	FireAt []time.Duration
	// SegmentStart maps each media place to its ideal start instant.
	SegmentStart map[string]time.Duration // keyed by place ID
	// ObjectStart maps object IDs to their first segment's start.
	ObjectStart map[string]time.Duration
	// Total is the presentation length (fire time of the last transition).
	Total time.Duration
}

// DeriveSchedule computes the schedule from the net structure alone by
// longest-path propagation: a transition fires when the latest of its
// input tokens unlocks. For nets compiled by Compile this reproduces the
// boundary times, which is exactly the consistency check Verify performs.
func (n *Net) DeriveSchedule() Schedule {
	s := Schedule{
		FireAt:       make([]time.Duration, len(n.Transitions)),
		SegmentStart: make(map[string]time.Duration),
		ObjectStart:  make(map[string]time.Duration),
	}
	// Availability time of the token in each place (structural places of
	// zero duration unlock at entry).
	avail := make(map[string]time.Duration)
	avail[string(n.Start)] = 0
	for i, t := range n.Transitions {
		var fire time.Duration
		for _, p := range n.Base.Input(t).Places() {
			if a, ok := avail[string(p)]; ok && a > fire {
				fire = a
			}
		}
		s.FireAt[i] = fire
		for _, p := range n.Base.Output(t).Places() {
			info := n.Places[p]
			if info == nil {
				avail[string(p)] = fire
				continue
			}
			avail[string(p)] = fire + info.Duration
			if info.IsMedia() {
				s.SegmentStart[string(p)] = fire
				if info.Segment == 0 {
					s.ObjectStart[info.Object.ID] = fire
				}
			}
		}
	}
	if len(s.FireAt) > 0 {
		s.Total = s.FireAt[len(s.FireAt)-1]
	}
	return s
}

// SyncSet is one synchronous set: the media objects that begin playing at
// the same presentation instant — the output of the paper's scheduling
// algorithm ("produce a synchronous set of multimedia objects with respect
// to time duration").
type SyncSet struct {
	At      time.Duration
	Objects []string
}

// SyncSets groups object starts by instant, ascending.
func (s Schedule) SyncSets() []SyncSet {
	byTime := make(map[time.Duration][]string)
	for id, at := range s.ObjectStart {
		byTime[at] = append(byTime[at], id)
	}
	out := make([]SyncSet, 0, len(byTime))
	for at, ids := range byTime {
		sort.Strings(ids)
		out = append(out, SyncSet{At: at, Objects: ids})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Verify cross-checks the net-derived schedule against the source
// timeline: every transition must fire at its boundary instant and every
// object must start at its declared time. A mismatch indicates the
// compiled structure does not realize the intended temporal behaviour.
func (n *Net) Verify() error {
	s := n.DeriveSchedule()
	for i, want := range n.Boundaries {
		rel := want - n.Boundaries[0]
		if s.FireAt[i] != rel {
			return fmt.Errorf("ocpn: transition %s fires at %v, boundary is %v",
				n.Transitions[i], s.FireAt[i], rel)
		}
	}
	for _, it := range n.Source.Items {
		want := it.Start - n.Boundaries[0]
		got, ok := s.ObjectStart[it.Object.ID]
		if !ok {
			return fmt.Errorf("ocpn: object %q missing from schedule", it.Object.ID)
		}
		if got != want {
			return fmt.Errorf("ocpn: object %q starts at %v, declared %v", it.Object.ID, got, want)
		}
	}
	return nil
}

// TimetableString renders the schedule as a human-readable table, used by
// cmd/dmps-sim to print Figure-1-style firing timelines.
func (s Schedule) TimetableString() string {
	var sb strings.Builder
	sb.WriteString("time          event\n")
	type row struct {
		at   time.Duration
		text string
	}
	var rows []row
	for i, at := range s.FireAt {
		rows = append(rows, row{at, fmt.Sprintf("fire t%d", i)})
	}
	for _, set := range s.SyncSets() {
		rows = append(rows, row{set.At, "start " + strings.Join(set.Objects, ", ")})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].at < rows[j].at })
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-13v %s\n", r.at, r.text)
	}
	return sb.String()
}
