// Package ocpn implements the Object Composition Petri Net of Little &
// Ghafoor ("Synchronization and Storage Models for Multimedia Objects",
// JSAC 1990), the timed presentation model the paper's DOCPN extends.
//
// An OCPN is compiled from a presentation timeline: every distinct
// start/end instant becomes a synchronization transition, and every media
// interval becomes a chain of timed places between consecutive
// transitions. A token entering a place is locked for the place's
// duration (the media plays while locked) and becomes available when the
// duration elapses; a transition fires when all of its input tokens are
// available. The compiled net is safe, acyclic and deterministic, which is
// what lets the scheduler derive the "synchronous set of multimedia
// objects with respect to time duration" the paper's algorithm produces.
package ocpn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dmps/internal/media"
	"dmps/internal/petri"
)

// Compilation errors.
var (
	// ErrEmptyTimeline is returned when compiling a timeline with no items.
	ErrEmptyTimeline = errors.New("ocpn: empty timeline")
	// ErrBadTimeline is returned for invalid items (negative start,
	// invalid media object, zero duration).
	ErrBadTimeline = errors.New("ocpn: invalid timeline")
)

// ScheduledObject is one media object placed on the presentation timeline.
type ScheduledObject struct {
	Object media.Object
	// Start is the presentation-time offset at which the object begins.
	Start time.Duration
}

// End is the instant the object finishes.
func (s ScheduledObject) End() time.Duration { return s.Start + s.Object.Duration }

// Timeline is an absolute-time presentation plan, usually produced by
// Solve from an Allen-relation specification.
type Timeline struct {
	Items []ScheduledObject
}

// End returns the finish time of the latest item.
func (tl Timeline) End() time.Duration {
	var end time.Duration
	for _, it := range tl.Items {
		if e := it.End(); e > end {
			end = e
		}
	}
	return end
}

// Validate checks every item.
func (tl Timeline) Validate() error {
	if len(tl.Items) == 0 {
		return ErrEmptyTimeline
	}
	seen := make(map[string]bool, len(tl.Items))
	for _, it := range tl.Items {
		if err := it.Object.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadTimeline, err)
		}
		if it.Object.Duration <= 0 {
			return fmt.Errorf("%w: object %q needs positive duration", ErrBadTimeline, it.Object.ID)
		}
		if it.Start < 0 {
			return fmt.Errorf("%w: object %q starts at %v", ErrBadTimeline, it.Object.ID, it.Start)
		}
		if seen[it.Object.ID] {
			return fmt.Errorf("%w: duplicate object %q", ErrBadTimeline, it.Object.ID)
		}
		seen[it.Object.ID] = true
	}
	return nil
}

// Place is the OCPN annotation of one petri place: which media object (if
// any) it plays, which segment of that object, and for how long a token
// entering it stays locked.
type Place struct {
	ID petri.PlaceID
	// Object is nil for structural places (start, end, delay fillers).
	Object *media.Object
	// Segment is the index of this interval's slice of the object.
	Segment int
	// Offset is the media-time offset where this segment begins.
	Offset time.Duration
	// Duration is the token lock time (segment length).
	Duration time.Duration
}

// IsMedia reports whether the place plays media (vs a structural delay).
func (p *Place) IsMedia() bool { return p.Object != nil }

// Net is a compiled OCPN.
type Net struct {
	// Base is the underlying place/transition structure.
	Base *petri.Net
	// Places annotates every place of Base.
	Places map[petri.PlaceID]*Place
	// Transitions are the synchronization transitions t0..tk in boundary
	// order; Transitions[i] fires at Boundaries[i] in the ideal schedule.
	Transitions []petri.TransitionID
	// Boundaries are the distinct start/end instants, ascending;
	// Boundaries[0] is the presentation start.
	Boundaries []time.Duration
	// Start is the initially-marked place feeding t0; End is marked after
	// the final transition fires.
	Start, End petri.PlaceID
	// Source is the timeline the net was compiled from.
	Source Timeline
}

// InitialMarking returns the marking that starts the presentation.
func (n *Net) InitialMarking() petri.Marking { return petri.NewMarking(n.Start) }

// Finished reports whether the presentation has completed in marking m.
func (n *Net) Finished(m petri.Marking) bool { return m.Tokens(n.End) > 0 }

// MediaPlaces returns the media-bearing places in deterministic order
// (object ID, then segment).
func (n *Net) MediaPlaces() []*Place {
	var out []*Place
	for _, p := range n.Places {
		if p.IsMedia() {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.ID != out[j].Object.ID {
			return out[i].Object.ID < out[j].Object.ID
		}
		return out[i].Segment < out[j].Segment
	})
	return out
}

// Compile builds the OCPN for a timeline. Every distinct boundary instant
// becomes a transition; every item becomes one place per boundary interval
// it covers; intervals covered by no item get a structural delay place so
// the transition chain stays connected.
func Compile(tl Timeline) (*Net, error) {
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	// Collect distinct boundaries.
	boundarySet := make(map[time.Duration]bool)
	for _, it := range tl.Items {
		boundarySet[it.Start] = true
		boundarySet[it.End()] = true
	}
	boundaries := make([]time.Duration, 0, len(boundarySet))
	for b := range boundarySet {
		boundaries = append(boundaries, b)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	base := petri.New()
	net := &Net{
		Base:       base,
		Places:     make(map[petri.PlaceID]*Place),
		Boundaries: boundaries,
		Source:     tl,
	}
	// Transitions at every boundary.
	for i, b := range boundaries {
		tid := petri.TransitionID(fmt.Sprintf("t%d", i))
		if err := base.AddTransition(tid, fmt.Sprintf("@%v", b)); err != nil {
			return nil, fmt.Errorf("ocpn: %w", err)
		}
		net.Transitions = append(net.Transitions, tid)
	}
	addPlace := func(id petri.PlaceID, label string, info *Place) error {
		if err := base.AddPlace(id, label); err != nil {
			return fmt.Errorf("ocpn: %w", err)
		}
		info.ID = id
		net.Places[id] = info
		return nil
	}
	// Start and end structural places.
	if err := addPlace("p_start", "start", &Place{}); err != nil {
		return nil, err
	}
	net.Start = "p_start"
	if err := base.AddInput("p_start", net.Transitions[0], 1); err != nil {
		return nil, fmt.Errorf("ocpn: %w", err)
	}
	if err := addPlace("p_end", "end", &Place{}); err != nil {
		return nil, err
	}
	net.End = "p_end"
	last := net.Transitions[len(net.Transitions)-1]
	if err := base.AddOutput(last, "p_end", 1); err != nil {
		return nil, fmt.Errorf("ocpn: %w", err)
	}

	idx := func(b time.Duration) int {
		return sort.Search(len(boundaries), func(i int) bool { return boundaries[i] >= b })
	}
	covered := make([]bool, len(boundaries)) // interval i: [b_i, b_i+1)
	for itemIdx := range tl.Items {
		it := tl.Items[itemIdx]
		obj := it.Object
		startIdx, endIdx := idx(it.Start), idx(it.End())
		seg := 0
		for i := startIdx; i < endIdx; i++ {
			covered[i] = true
			segDur := boundaries[i+1] - boundaries[i]
			pid := petri.PlaceID(fmt.Sprintf("p_%s_%d", obj.ID, seg))
			info := &Place{
				Object:   &tl.Items[itemIdx].Object,
				Segment:  seg,
				Offset:   boundaries[i] - it.Start,
				Duration: segDur,
			}
			if err := addPlace(pid, fmt.Sprintf("%s[%d] %v", obj.ID, seg, segDur), info); err != nil {
				return nil, err
			}
			if err := base.AddOutput(net.Transitions[i], pid, 1); err != nil {
				return nil, fmt.Errorf("ocpn: %w", err)
			}
			if err := base.AddInput(pid, net.Transitions[i+1], 1); err != nil {
				return nil, fmt.Errorf("ocpn: %w", err)
			}
			seg++
		}
	}
	// Fill uncovered gaps with delay places so every transition is reachable.
	for i := 0; i+1 < len(boundaries); i++ {
		if covered[i] {
			continue
		}
		segDur := boundaries[i+1] - boundaries[i]
		pid := petri.PlaceID(fmt.Sprintf("p_delay_%d", i))
		if err := addPlace(pid, fmt.Sprintf("delay %v", segDur), &Place{Duration: segDur}); err != nil {
			return nil, err
		}
		if err := base.AddOutput(net.Transitions[i], pid, 1); err != nil {
			return nil, fmt.Errorf("ocpn: %w", err)
		}
		if err := base.AddInput(pid, net.Transitions[i+1], 1); err != nil {
			return nil, fmt.Errorf("ocpn: %w", err)
		}
	}
	return net, nil
}

// DOT renders the annotated net in Graphviz format.
func (n *Net) DOT(name string) string {
	return n.Base.DOT(name, n.InitialMarking())
}
