// Package transport defines the message-oriented network abstraction the
// DMPS server and clients speak over, with two interchangeable
// implementations: real TCP (this package) and the simulated in-memory
// network of package netsim. Messages are opaque byte slices; framing and
// delivery order are per-connection FIFO, like TCP.
package transport

import "errors"

// Errors shared by all transport implementations.
var (
	// ErrClosed is returned by operations on a closed connection or
	// listener.
	ErrClosed = errors.New("transport: closed")
	// ErrTooLarge is returned when a message exceeds MaxMessageSize.
	ErrTooLarge = errors.New("transport: message exceeds size limit")
	// ErrUnknownAddress is returned by Dial for an unreachable address.
	ErrUnknownAddress = errors.New("transport: unknown address")
)

// MaxMessageSize bounds a single framed message (16 MiB), protecting
// against corrupt length prefixes.
const MaxMessageSize = 16 << 20

// Conn is a reliable, ordered, message-oriented connection.
// Send and Recv may be used concurrently with each other; neither may be
// called concurrently with itself.
type Conn interface {
	// Send transmits one message.
	Send(payload []byte) error
	// Recv blocks for the next message. It returns ErrClosed once the
	// connection is closed and drained.
	Recv() ([]byte, error)
	// Close tears the connection down, unblocking the peer's Recv.
	// Close is idempotent.
	Close() error
	// LocalAddr and RemoteAddr identify the endpoints.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accept calls return ErrClosed.
	Close() error
	// Addr is the listen address.
	Addr() string
}

// Network creates listeners and outbound connections.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}
