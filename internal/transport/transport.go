// Package transport defines the message-oriented network abstraction the
// DMPS server and clients speak over, with two interchangeable
// implementations: real TCP (this package) and the simulated in-memory
// network of package netsim. Messages are opaque byte slices; framing and
// delivery order are per-connection FIFO, like TCP.
package transport

import "errors"

// Errors shared by all transport implementations.
var (
	// ErrClosed is returned by operations on a closed connection or
	// listener.
	ErrClosed = errors.New("transport: closed")
	// ErrTooLarge is returned when a message exceeds MaxMessageSize.
	ErrTooLarge = errors.New("transport: message exceeds size limit")
	// ErrUnknownAddress is returned by Dial for an unreachable address.
	ErrUnknownAddress = errors.New("transport: unknown address")
)

// MaxMessageSize bounds a single framed message (16 MiB), protecting
// against corrupt length prefixes.
const MaxMessageSize = 16 << 20

// Conn is a reliable, ordered, message-oriented connection.
// Send and Recv may be used concurrently with each other; neither may be
// called concurrently with itself.
type Conn interface {
	// Send transmits one message. The caller must not modify the
	// payload after Send returns: the in-memory network enqueues it
	// without copying (one encoded fan-out buffer reaches every
	// recipient), and decoded messages alias their frame.
	Send(payload []byte) error
	// Recv blocks for the next message. It returns ErrClosed once the
	// connection is closed and drained.
	Recv() ([]byte, error)
	// Close tears the connection down, unblocking the peer's Recv.
	// Close is idempotent.
	Close() error
	// LocalAddr and RemoteAddr identify the endpoints.
	LocalAddr() string
	RemoteAddr() string
}

// BatchSender is an optional Conn capability: transmit a run of
// messages as one underlying write (writev-style). A writer that has
// drained its queue hands the whole run over so a deep queue costs one
// syscall per drain, not one per message. Like Send, the payloads must
// not be modified after the call.
type BatchSender interface {
	SendBatch(payloads [][]byte) error
}

// SendAll transmits every payload over conn in order, as one batched
// write when the connection supports it and one Send per message
// otherwise. The first error aborts the rest.
func SendAll(conn Conn, payloads [][]byte) error {
	if bs, ok := conn.(BatchSender); ok {
		return bs.SendBatch(payloads)
	}
	for _, p := range payloads {
		if err := conn.Send(p); err != nil {
			return err
		}
	}
	return nil
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accept calls return ErrClosed.
	Close() error
	// Addr is the listen address.
	Addr() string
}

// Network creates listeners and outbound connections.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}
