package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is the real-socket implementation of Network. Messages are framed
// with a 4-byte big-endian length prefix.
type TCP struct{}

var _ Network = TCP{}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w (%w)", addr, err, ErrUnknownAddress)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l      net.Listener
	closed sync.Once
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error {
	var err error
	t.closed.Do(func() { err = t.l.Close() })
	return err
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	lenBuf  [4]byte
	closed  sync.Once
	closeMu sync.Mutex
	dead    bool
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

func (t *tcpConn) Send(payload []byte) error {
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	t.closeMu.Lock()
	dead := t.dead
	t.closeMu.Unlock()
	if dead {
		return ErrClosed
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := t.c.Write(header[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.c.Write(payload); err != nil {
		return t.mapErr(err)
	}
	return nil
}

// packBufs pools batch packing buffers. Oversized buffers (past 1 MiB)
// are dropped instead of pooled so one huge drain does not pin its
// high-water mark forever.
var packBufs = sync.Pool{
	New: func() any { b := make([]byte, 0, 64<<10); return &b },
}

// SendBatch implements BatchSender: every frame (4-byte big-endian
// length prefix + payload, the same framing Send uses) is packed into
// one pooled buffer and written with a single syscall.
func (t *tcpConn) SendBatch(payloads [][]byte) error {
	for _, p := range payloads {
		if len(p) > MaxMessageSize {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(p))
		}
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	t.closeMu.Lock()
	dead := t.dead
	t.closeMu.Unlock()
	if dead {
		return ErrClosed
	}
	bp := packBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	var header [4]byte
	for _, p := range payloads {
		binary.BigEndian.PutUint32(header[:], uint32(len(p)))
		buf = append(buf, header[:]...)
		buf = append(buf, p...)
	}
	_, err := t.c.Write(buf)
	if cap(buf) <= 1<<20 {
		*bp = buf
		packBufs.Put(bp)
	}
	if err != nil {
		return t.mapErr(err)
	}
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.c, t.lenBuf[:]); err != nil {
		return nil, t.mapErr(err)
	}
	n := binary.BigEndian.Uint32(t.lenBuf[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.c, payload); err != nil {
		return nil, t.mapErr(err)
	}
	return payload, nil
}

func (t *tcpConn) Close() error {
	var err error
	t.closed.Do(func() {
		t.closeMu.Lock()
		t.dead = true
		t.closeMu.Unlock()
		err = t.c.Close()
	})
	return err
}

func (t *tcpConn) LocalAddr() string  { return t.c.LocalAddr().String() }
func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

// mapErr folds the many shutdown error shapes of net into ErrClosed so
// callers have one sentinel to test.
func (t *tcpConn) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	var ne net.Error
	if errors.As(err, &ne) && !ne.Timeout() {
		return fmt.Errorf("transport: %w (%w)", err, ErrClosed)
	}
	return fmt.Errorf("transport: %w", err)
}
