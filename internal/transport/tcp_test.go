package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func tcpPair(t *testing.T) (client, server Conn, cleanup func()) {
	t.Helper()
	var network TCP
	l, err := network.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var (
		sc   Conn
		sErr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc, sErr = l.Accept()
	}()
	cc, err := network.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	wg.Wait()
	if sErr != nil {
		t.Fatalf("Accept: %v", sErr)
	}
	return cc, sc, func() {
		cc.Close()
		sc.Close()
		l.Close()
	}
}

func TestTCPRoundTrip(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	msg := []byte("hello dmps")
	if err := client.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	// And the reverse direction.
	if err := server.Send([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Recv(); err != nil || string(got) != "ack" {
		t.Errorf("reverse: %q %v", got, err)
	}
}

func TestTCPOrderingManyMessages(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := client.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if int(got[0])|int(got[1])<<8 != i {
			t.Fatalf("out of order at %d: % x", i, got)
		}
	}
	wg.Wait()
}

func TestTCPEmptyMessage(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	if err := client.Send(nil); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes", len(got))
	}
}

func TestTCPTooLarge(t *testing.T) {
	client, _, cleanup := tcpPair(t)
	defer cleanup()
	big := make([]byte, MaxMessageSize+1)
	if err := client.Send(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	client.Close()
	err := <-done
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after peer close: %v, want ErrClosed", err)
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	client, _, cleanup := tcpPair(t)
	defer cleanup()
	client.Close()
	if err := client.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	if err := client.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	_ = server
}

func TestTCPListenerCloseUnblocksAccept(t *testing.T) {
	var network TCP
	l, err := network.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after close: %v", err)
	}
}

func TestTCPDialUnknown(t *testing.T) {
	var network TCP
	if _, err := network.Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

func TestTCPAddrs(t *testing.T) {
	client, server, cleanup := tcpPair(t)
	defer cleanup()
	if client.RemoteAddr() != server.LocalAddr() {
		t.Errorf("addr mismatch: %q vs %q", client.RemoteAddr(), server.LocalAddr())
	}
}
