#!/usr/bin/env bash
# Soak smoke: boot 1 router + 2 group-partition nodes as REAL processes
# over localhost TCP with their /metrics planes on, then hold a short
# steady offered rate from TWO dmps-swarm shard processes (-soak) that
# split one seeded flash-crowd schedule, synchronize t0 through the
# -barrier handshake, and pre-dial their fleets (-prealloc). The
# flash-crowd mix shares ONE group across shards, so the merged
# invariant check genuinely spans processes. Shard 0 scrapes every
# endpoint's /metrics each second into its report; after -merge, the
# -check gate requires zero errors, zero floor-exclusivity violations,
# AND -require-scrapes 2 — every scraped endpoint must carry at least
# two samples of a dmps_ series, proving the report correlates the
# generator's SLOs with the servers' own gauges over one soak window.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_soak_smoke.json}"

NODE0=127.0.0.1:7251
NODE1=127.0.0.1:7252
ROUTER=127.0.0.1:7250
MET_NODE0=127.0.0.1:9251
MET_NODE1=127.0.0.1:9252
MET_ROUTER=127.0.0.1:9250
NODES="$NODE0,$NODE1"

BIN="$(mktemp -d)"
RUN="$(mktemp -d)"
PIDS=()
cleanup() {
    kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN" "$RUN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dmps-server ./cmd/dmps-router ./cmd/dmps-swarm

"$BIN/dmps-server" -addr "$NODE0" -cluster "$NODES" -node 0 -metrics "$MET_NODE0" &
PIDS+=($!)
"$BIN/dmps-server" -addr "$NODE1" -cluster "$NODES" -node 1 -metrics "$MET_NODE1" &
PIDS+=($!)
"$BIN/dmps-router" -addr "$ROUTER" -nodes "$NODES" -metrics "$MET_ROUTER" &
PIDS+=($!)

for addr in "$NODE0" "$NODE1" "$ROUTER" "$MET_NODE0" "$MET_NODE1" "$MET_ROUTER"; do
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- || true
            continue 2
        fi
        sleep 0.1
    done
    echo "soak_smoke: $addr never came up" >&2
    exit 1
done

# 4s of held offered rate (-soak 4s at a 20ms mean gap ≈ a 200-op
# global schedule split across the two shards), scraped each second —
# short enough for CI, long enough that every endpoint yields well over
# the two correlated samples the gate demands.
SHARD_PIDS=()
for i in 0 1; do
    SCRAPE=()
    if [ "$i" = 0 ]; then
        SCRAPE=(-scrape "$MET_ROUTER,$MET_NODE0,$MET_NODE1" -scrape-interval 1s)
    fi
    "$BIN/dmps-swarm" -addr "$ROUTER" -nodes "$NODES" \
        -mix flash-crowd -members 6 -soak 4s -mean 20ms -settle 8s -seed 9 \
        -shards 2 -shard "$i" -barrier "$RUN/barrier" -prealloc \
        "${SCRAPE[@]}" \
        -note "soak smoke: flash-crowd shard $i of 2" \
        -out "$RUN/soak_shard$i.json" &
    SHARD_PIDS+=($!)
done
for pid in "${SHARD_PIDS[@]}"; do
    wait "$pid" || { echo "soak_smoke: soak shard failed" >&2; exit 1; }
done

"$BIN/dmps-swarm" -merge -out "$OUT" "$RUN/soak_shard0.json" "$RUN/soak_shard1.json"
"$BIN/dmps-swarm" -check "$OUT" -require-scrapes 2
echo "soak_smoke: OK ($OUT)"
