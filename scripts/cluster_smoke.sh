#!/usr/bin/env bash
# Multi-process cluster smoke: boot 1 router + 2 group-partition nodes
# as REAL processes over localhost TCP, then drive the quickstart flow
# across a partition boundary with cmd/dmps-smoke. CI runs this as the
# end-to-end check that the cluster plane works process-to-process, not
# just in-memory.
set -euo pipefail
cd "$(dirname "$0")/.."

NODE0=127.0.0.1:7141
NODE1=127.0.0.1:7142
ROUTER=127.0.0.1:7140
NODES="$NODE0,$NODE1"
MET0=127.0.0.1:7151
MET1=127.0.0.1:7152
METR=127.0.0.1:7150
METRICS="$METR,$MET0,$MET1"

BIN="$(mktemp -d)"
cleanup() {
    # Kill the whole tree; the trap runs on success and failure alike.
    kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dmps-server ./cmd/dmps-router ./cmd/dmps-smoke

PIDS=()
"$BIN/dmps-server" -addr "$NODE0" -cluster "$NODES" -node 0 -probe 100ms -metrics "$MET0" &
PIDS+=($!)
"$BIN/dmps-server" -addr "$NODE1" -cluster "$NODES" -node 1 -probe 100ms -metrics "$MET1" &
PIDS+=($!)
"$BIN/dmps-router" -addr "$ROUTER" -nodes "$NODES" -metrics "$METR" &
PIDS+=($!)

# Wait for all three listeners to come up.
for addr in "$NODE0" "$NODE1" "$ROUTER"; do
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- || true
            continue 2
        fi
        sleep 0.1
    done
    echo "cluster_smoke: $addr never came up" >&2
    exit 1
done

"$BIN/dmps-smoke" -router "$ROUTER" -nodes "$NODES" -metrics "$METRICS"
echo "cluster_smoke: OK (router + 2 nodes + /metrics, real TCP, separate processes)"
