#!/usr/bin/env bash
# Multi-process cluster smoke: boot 1 router + 3 WAL-backed
# group-partition nodes as REAL processes over localhost TCP, then run
# three drills CI depends on:
#
#   1. the quickstart flow across a partition boundary (cmd/dmps-smoke),
#      with the observability probe requiring the replication and WAL
#      series fleet-wide;
#   2. kill-owner-mid-flow: the swarm chaos mix fells the node owning
#      its group while the floor is held and chats are in flight, load
#      rides the failover onto the replica, the node is restarted, and
#      the router's -recover prober migrates its partitions home under
#      a new epoch — gated on zero errors, and on the tracing plane
#      having retained the drill's slow operations in at least one
#      surviving flight recorder's slow-op ring;
#   3. full-restart-replays-WAL: all three nodes are felled at once and
#      restarted on their same WAL dirs, and the fleet must serve the
#      whole quickstart flow again from its replayed journals.
set -euo pipefail
cd "$(dirname "$0")/.."

NODE0=127.0.0.1:7141
NODE1=127.0.0.1:7142
NODE2=127.0.0.1:7143
ROUTER=127.0.0.1:7140
NODES="$NODE0,$NODE1,$NODE2"
MET0=127.0.0.1:7151
MET1=127.0.0.1:7152
MET2=127.0.0.1:7153
METR=127.0.0.1:7150
METRICS="$METR,$MET0,$MET1,$MET2"

BIN="$(mktemp -d)"
RUN="$(mktemp -d)"
cleanup() {
    # Kill the whole tree; the trap runs on success and failure alike.
    kill $(cat "$RUN"/node*.pid 2>/dev/null) 2>/dev/null || true
    kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN" "$RUN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dmps-server ./cmd/dmps-router ./cmd/dmps-smoke ./cmd/dmps-swarm

# node_ctl {start|kill} <idx>: chaos hooks and the restart drill both
# drive nodes through this, so every (re)start uses the same flags and
# the same per-node WAL dir — a restart replays what its predecessor
# journalled.
cat > "$RUN/node_ctl" <<EOF
#!/usr/bin/env bash
set -euo pipefail
cmd="\$1"; i="\$2"
addrs=($NODE0 $NODE1 $NODE2)
mets=($MET0 $MET1 $MET2)
case "\$cmd" in
start)
    "$BIN/dmps-server" -addr "\${addrs[\$i]}" -cluster "$NODES" -node "\$i" \
        -probe 100ms -rf 3 -wal "$RUN/wal/node\$i" -metrics "\${mets[\$i]}" &
    echo \$! > "$RUN/node\$i.pid"
    ;;
kill)
    kill -9 "\$(cat "$RUN/node\$i.pid")"
    ;;
esac
EOF
chmod +x "$RUN/node_ctl"

wait_up() {
    for addr in "$@"; do
        for _ in $(seq 1 50); do
            if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
                exec 3>&- || true
                continue 2
            fi
            sleep 0.1
        done
        echo "cluster_smoke: $addr never came up" >&2
        exit 1
    done
}

PIDS=()
for i in 0 1 2; do "$RUN/node_ctl" start "$i"; done
"$BIN/dmps-router" -addr "$ROUTER" -nodes "$NODES" -recover 500ms -metrics "$METR" &
PIDS+=($!)
wait_up "$NODE0" "$NODE1" "$NODE2" "$ROUTER"

# Drill 1: cross-partition quickstart + observability (replication,
# epoch and WAL series must exist fleet-wide).
"$BIN/dmps-smoke" -router "$ROUTER" -nodes "$NODES" -metrics "$METRICS" -wal -prefix smoke1

# Drill 2: kill the chaos group's owner mid-floor-hold, restart it
# later in the mix; zero errors means the replica converged and the
# migration home lost nothing. -trace stamps every request, so the
# fleet's tracing planes record the drill — including the
# downtime-length replication acks the kill forced: at -rf 3 the
# adopting survivor replicates every append to the WHOLE ring, dead
# node included, so its post-restart acks carry round trips no shorter
# than the outage (at -rf 2 each node ships only to its own successor
# and no survivor ever waits on the felled node).
"$BIN/dmps-swarm" -addr "$ROUTER" -nodes "$NODES" -mix chaos \
    -members 4 -ops 60 -mean 20ms -settle 10s -seed 7 \
    -chaos-kill "$RUN/node_ctl kill \$DMPS_CHAOS_NODE" \
    -chaos-restart "$RUN/node_ctl start \$DMPS_CHAOS_NODE" \
    -trace "$METRICS" \
    -note "cluster smoke chaos drill" -out "$RUN/chaos.json"
"$BIN/dmps-swarm" -check "$RUN/chaos.json"

# The chaos drill must have left evidence in a flight recorder: some
# traced operation rode out the kill window, so at least one surviving
# process's slow-op ring (always retained, never evicted by fast ops)
# must be non-empty. Pure-bash HTTP GET — the probe must run BEFORE
# drill 3 restarts every node, because the rings die with the process.
slow_ring_nonempty() {
    local addr=$1 body
    exec 9<>"/dev/tcp/${addr%:*}/${addr#*:}" || return 1
    printf 'GET /debug/traces HTTP/1.0\r\nHost: %s\r\n\r\n' "$addr" >&9
    body="$(cat <&9)"
    exec 9>&- || true
    [[ "$body" == *'"slow":[{'* ]]
}
# A just-acked slow span sits in the pending table until the plane's
# sweeper sees it quiet for a full cycle (250ms), so poll for a few
# seconds rather than racing the final sweep.
FOUND_SLOW=0
for _ in $(seq 1 20); do
    for addr in $METR $MET0 $MET1 $MET2; do
        if slow_ring_nonempty "$addr"; then
            echo "cluster_smoke: slow-op traces retained at http://$addr/debug/traces"
            FOUND_SLOW=1
        fi
    done
    [ "$FOUND_SLOW" = 1 ] && break
    sleep 0.3
done
if [ "$FOUND_SLOW" != 1 ]; then
    echo "cluster_smoke: FAIL: no endpoint retained a slow-op trace after the chaos drill" >&2
    exit 1
fi

# Drill 3: full-cluster restart on the same WAL dirs. The router never
# tears its map down (no sessions were flowing), so the fleet must come
# back serving from its replayed journals alone.
for i in 0 1 2; do "$RUN/node_ctl" kill "$i"; done
for i in 0 1 2; do "$RUN/node_ctl" start "$i"; done
wait_up "$NODE0" "$NODE1" "$NODE2"
sleep 1 # let the router's recover prober reinstate anything it marked down
"$BIN/dmps-smoke" -router "$ROUTER" -nodes "$NODES" -metrics "$METRICS" -wal -prefix smoke2

echo "cluster_smoke: OK (router + 3 WAL-backed nodes, chaos kill/restart, full WAL-replay restart)"
