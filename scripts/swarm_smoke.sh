#!/usr/bin/env bash
# Swarm smoke: boot 1 router + 2 group-partition nodes as REAL
# processes over localhost TCP, run a short open-loop swarm (the
# lecture fan-out and the reconnect storm), and gate the resulting SLO
# report with dmps-swarm -check: it must parse and every mix must show
# zero errors and a finite, non-zero p99 grant latency. CI uploads the
# report as the BENCH_pr6.json artifact of the run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_swarm_smoke.json}"

NODE0=127.0.0.1:7241
NODE1=127.0.0.1:7242
ROUTER=127.0.0.1:7240
NODES="$NODE0,$NODE1"

BIN="$(mktemp -d)"
cleanup() {
    kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dmps-server ./cmd/dmps-router ./cmd/dmps-swarm

PIDS=()
"$BIN/dmps-server" -addr "$NODE0" -cluster "$NODES" -node 0 -probe 100ms &
PIDS+=($!)
"$BIN/dmps-server" -addr "$NODE1" -cluster "$NODES" -node 1 -probe 100ms &
PIDS+=($!)
"$BIN/dmps-router" -addr "$ROUTER" -nodes "$NODES" &
PIDS+=($!)

for addr in "$NODE0" "$NODE1" "$ROUTER"; do
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- || true
            continue 2
        fi
        sleep 0.1
    done
    echo "swarm_smoke: $addr never came up" >&2
    exit 1
done

# ~5s of open-loop load: 100 ops per mix at a 20ms mean gap ≈ 2s of
# scheduled arrivals each, plus settle.
"$BIN/dmps-swarm" -addr "$ROUTER" -nodes "$NODES" \
    -mix lecture,reconnect-storm -members 6 -ops 100 -mean 20ms \
    -seed 6 -note "swarm smoke: router + 2 nodes over localhost TCP" \
    -out "$OUT"
"$BIN/dmps-swarm" -check "$OUT"
echo "swarm_smoke: OK ($OUT)"
