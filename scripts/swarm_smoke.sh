#!/usr/bin/env bash
# Swarm smoke: boot 1 router + 2 WAL-backed group-partition nodes as
# REAL processes over localhost TCP, run a short open-loop swarm, and
# gate the resulting SLO report with dmps-swarm -check: it must parse,
# every mix must show zero errors, zero floor-exclusivity violations,
# and a finite, non-zero p99 grant latency, and mixes shared with the
# checked-in baseline must hold their p99 within the growth ratio.
#
# The lecture mix runs MULTI-PROCESS: two dmps-swarm shards split one
# seeded schedule (-shards 2 -shard i), synchronize t0 through the
# -barrier file handshake, pre-dial their fleets (-prealloc), and write
# per-shard reports that -merge folds back into one document — so every
# push exercises the sharded generator path end to end. The reconnect
# storm and the chaos failure drill (the group's owner is felled
# mid-floor-hold and restarted mid-mix) run single-process, and all
# three mixes merge into the one report CI uploads as an artifact.
#
# Every run traces: -trace stamps a sampled context on all requests and
# pools the fleet's /debug/traces flight recorders into the report's
# Stage/ breakdown, which the final check gates (≥ 5 stages with spans,
# p50 sum within 1.5× the measured grant p50).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_swarm_smoke.json}"
BASELINE="BENCH_pr7.json"

NODE0=127.0.0.1:7241
NODE1=127.0.0.1:7242
ROUTER=127.0.0.1:7240
NODES="$NODE0,$NODE1"
MET0=127.0.0.1:7251
MET1=127.0.0.1:7252
METR=127.0.0.1:7250
METRICS="$METR,$MET0,$MET1"

BIN="$(mktemp -d)"
RUN="$(mktemp -d)"
cleanup() {
    kill $(cat "$RUN"/node*.pid 2>/dev/null) 2>/dev/null || true
    kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN" "$RUN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dmps-server ./cmd/dmps-router ./cmd/dmps-swarm

# node_ctl {start|kill} <idx>: the chaos mix's hooks restart the victim
# with the same flags and WAL dir, so the restart replays its journal.
cat > "$RUN/node_ctl" <<EOF
#!/usr/bin/env bash
set -euo pipefail
cmd="\$1"; i="\$2"
addrs=($NODE0 $NODE1)
mets=($MET0 $MET1)
case "\$cmd" in
start)
    "$BIN/dmps-server" -addr "\${addrs[\$i]}" -cluster "$NODES" -node "\$i" \
        -probe 100ms -rf 2 -wal "$RUN/wal/node\$i" -metrics "\${mets[\$i]}" &
    echo \$! > "$RUN/node\$i.pid"
    ;;
kill)
    kill -9 "\$(cat "$RUN/node\$i.pid")"
    ;;
esac
EOF
chmod +x "$RUN/node_ctl"

PIDS=()
for i in 0 1; do "$RUN/node_ctl" start "$i"; done
"$BIN/dmps-router" -addr "$ROUTER" -nodes "$NODES" -recover 500ms -metrics "$METR" &
PIDS+=($!)

for addr in "$NODE0" "$NODE1" "$ROUTER"; do
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- || true
            continue 2
        fi
        sleep 0.1
    done
    echo "swarm_smoke: $addr never came up" >&2
    exit 1
done

# Multi-process lecture: two shards split the 200-op schedule (~100
# ops each), pre-dial their fleets, and gate t0 on the barrier files so
# the merged timeline is one schedule. Each shard's chair runs its own
# group; the merged report re-checks floor exclusivity over both.
SHARD_PIDS=()
for i in 0 1; do
    "$BIN/dmps-swarm" -addr "$ROUTER" -nodes "$NODES" \
        -mix lecture -members 6 -ops 200 -mean 20ms -settle 8s -seed 6 \
        -shards 2 -shard "$i" -barrier "$RUN/barrier" -prealloc \
        -trace "$METRICS" \
        -note "swarm smoke: lecture shard $i of 2" \
        -out "$RUN/lecture_shard$i.json" &
    SHARD_PIDS+=($!)
done
for pid in "${SHARD_PIDS[@]}"; do
    wait "$pid" || { echo "swarm_smoke: lecture shard failed" >&2; exit 1; }
done

# ~8s of single-process open-loop load for the failure drills: 200 ops
# per mix at a 20ms mean gap ≈ 4s of scheduled arrivals each, plus
# settle — the chaos mix spends part of its window felling and
# restarting the owner node. 200 ops means ~20 release/re-acquire floor
# probes per mix, so the p99 grant gates rest on a real sample
# population rather than two-sample noise.
"$BIN/dmps-swarm" -addr "$ROUTER" -nodes "$NODES" \
    -mix reconnect-storm,chaos -members 6 -ops 200 -mean 20ms \
    -settle 8s -seed 6 \
    -chaos-kill "$RUN/node_ctl kill \$DMPS_CHAOS_NODE" \
    -chaos-restart "$RUN/node_ctl start \$DMPS_CHAOS_NODE" \
    -trace "$METRICS" \
    -note "swarm smoke: router + 2 WAL-backed nodes over localhost TCP" \
    -out "$RUN/drills.json"

# One merged document: the sharded lecture plus the drill mixes.
"$BIN/dmps-swarm" -merge -out "$OUT" \
    "$RUN/lecture_shard0.json" "$RUN/lecture_shard1.json" "$RUN/drills.json"
# The latency-trend ratio is deliberately loose: p99s on shared CI
# runners are noisy, and the errors=0 + zero-violations gates are the
# correctness signal. The chaos mix in particular is bimodal — its p99
# sample is the kill-to-recovery re-grant, milliseconds when the floor
# rides the surviving link and ~100ms+ when recovery waits out a retry
# cycle — so the ratio must span both modes against a baseline that
# captured the lucky one; 20× still fails a failover that degrades to
# hundreds of milliseconds. -require-stages gates the tracing plane:
# the merged report must decompose the grant SLO into ≥ 5 stages with
# spans, whose p50 sum stays within 1.5× the measured grant p50.
"$BIN/dmps-swarm" -check "$OUT" -baseline "$BASELINE" -max-growth 20.0 -require-stages 5
echo "swarm_smoke: OK ($OUT)"
