// Degradation: the α/β resource ladder of FCM-Arbitrate on the live
// stack. As host resources drain, Media-Suspend sheds the lowest-priority
// members one by one; below β arbitration aborts; recovery reinstates
// everyone. This is the paper's "different levels of treatment when the
// source is not sufficient".
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"dmps"
	"dmps/internal/client"
	"dmps/internal/resource"
)

func main() {
	lab, err := dmps.NewLab(dmps.LabOptions{
		Seed:          13,
		Thresholds:    dmps.Thresholds{Alpha: 0.5, Beta: 0.2},
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	teacher := mustClient(lab, "Teacher", "chair", 5)
	members := []*client.Client{
		teacher,
		mustClient(lab, "Alice", "participant", 3),
		mustClient(lab, "Bob", "participant", 2),
		mustClient(lab, "Carol", "participant", 1),
	}
	for _, c := range members {
		if err := c.Join("class"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("availability  level     suspended after arbitration")
	for _, avail := range []float64{1.0, 0.45, 0.35, 0.25, 0.10} {
		lab.Monitor.Set(resource.Vector{Network: avail, CPU: avail, Memory: avail})
		dec, err := teacher.RequestFloor("class", dmps.FreeAccess, "")
		switch {
		case errors.Is(err, client.ErrDenied):
			fmt.Printf("%.2f          critical  ABORT-ARBITRATE (below β)\n", avail)
			continue
		case err != nil:
			log.Fatal(err)
		}
		fmt.Printf("%.2f          %-8s  %v\n", avail, dec.Level, dec.Suspended)
	}

	// Carol (priority 1) was shed first; her messages bounce.
	carol := members[3]
	if err := carol.Chat("class", "can anyone hear me?"); errors.Is(err, client.ErrDenied) {
		fmt.Println("\ncarol is suspended: chat denied ✔")
	}

	// Recovery: resources return; the probe loop reinstates everyone.
	lab.Monitor.Set(resource.Vector{Network: 1, CPU: 1, Memory: 1})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := carol.Chat("class", "back online"); err == nil {
			fmt.Println("resources recovered: carol reinstated ✔")
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("carol never reinstated")
}

func mustClient(lab *dmps.Lab, name, role string, priority int) *client.Client {
	c, err := lab.NewClient(name, role, priority)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
