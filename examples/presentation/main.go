// Presentation: the paper's Petri-net presentation pipeline end to end.
// An Allen-relation specification is solved into a timeline, compiled to
// an OCPN (with analysis), then (1) simulated across distributed sites
// with and without the global clock, including a mid-playout user
// interaction through the priority arcs, and (2) played live over the
// DMPS stack with synchronized clients.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dmps"
	"dmps/internal/media"
)

func main() {
	// 1. Specify the presentation by temporal relations, not timestamps.
	spec := dmps.Spec{
		Objects: []dmps.MediaObject{
			{ID: "title", Kind: dmps.Image, Duration: 3 * time.Second},
			{ID: "lecture-video", Kind: dmps.Video, Duration: 12 * time.Second, Rate: 30},
			{ID: "narration", Kind: dmps.Audio, Duration: 12 * time.Second, Rate: 50},
			{ID: "caption", Kind: dmps.Text, Duration: 4 * time.Second},
		},
		Constraints: []dmps.Constraint{
			{A: "title", B: "lecture-video", Rel: dmps.Meets},
			{A: "lecture-video", B: "narration", Rel: dmps.Equals},
			{A: "lecture-video", B: "caption", Rel: dmps.During, Gap: 2 * time.Second},
		},
	}
	tl, err := dmps.Solve(spec)
	if err != nil {
		log.Fatal(err)
	}
	net, err := dmps.Compile(tl)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	sched := net.DeriveSchedule()
	fmt.Println("firing timetable with synchronous sets:")
	fmt.Print(sched.TimetableString())

	// 2a. Distributed simulation: three sites, global clock on.
	sites := []dmps.SimSite{
		{Name: "campus", ControlDelay: 2 * time.Millisecond, SyncErr: time.Millisecond},
		{Name: "home", ControlDelay: 60 * time.Millisecond, SyncErr: -2 * time.Millisecond, Drift: 80e-6},
		{Name: "abroad", ControlDelay: 150 * time.Millisecond, SyncErr: 3 * time.Millisecond, Drift: -120e-6},
	}
	skipAt := 5 * time.Second
	interactions := []dmps.Interaction{{At: skipAt, Site: "home", Kind: dmps.SkipInteraction}}
	withClock, err := dmps.SimulateWith(dmps.SimConfig{
		Timeline: tl, Sites: sites, Mode: dmps.GlobalClock, PrioritySkip: true,
	}, interactions)
	if err != nil {
		log.Fatal(err)
	}
	withoutClock, err := dmps.SimulateWith(dmps.SimConfig{
		Timeline: tl, Sites: sites, Mode: dmps.LocalClock, PrioritySkip: false,
	}, interactions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed simulation (user skips at %v):\n", skipAt)
	fmt.Printf("  DOCPN (global clock + priority arcs): skip latency %v\n",
		withClock.InteractionLatency[0].Round(time.Millisecond))
	fmt.Printf("  OCPN baseline (no clock, no priority): skip latency %v\n",
		withoutClock.InteractionLatency[0].Round(time.Millisecond))

	// 2b. Live playout over the DMPS stack: the chair broadcasts a short
	// version; two synchronized clients play it.
	short := dmps.Timeline{Items: []dmps.ScheduledObject{
		{Object: dmps.MediaObject{ID: "title", Kind: dmps.Image, Duration: 20 * time.Millisecond}, Start: 0},
		{Object: dmps.MediaObject{ID: "clip", Kind: dmps.Video, Duration: 20 * time.Millisecond, Rate: 30}, Start: 20 * time.Millisecond},
	}}
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		log.Fatal(err)
	}
	student, err := lab.NewClient("Student", "participant", 2)
	if err != nil {
		log.Fatal(err)
	}
	_ = teacher.Join("class")
	_ = student.Join("class")
	if _, err := teacher.SyncClock(); err != nil {
		log.Fatal(err)
	}
	if _, err := student.SyncClock(); err != nil {
		log.Fatal(err)
	}
	start := lab.Server.Master().GlobalNow().Add(50 * time.Millisecond)
	if err := teacher.StartPresentation("class", dmps.PresentationWire(short, start)); err != nil {
		log.Fatal(err)
	}
	for student.Presentation() == nil {
		time.Sleep(time.Millisecond)
	}
	var meter media.SkewMeter
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, site := range []struct {
		name string
		c    interface {
			Presentation() *dmps.WirePresentation
			Estimator() *dmps.ClockEstimator
		}
	}{{"teacher", teacher}, {"student", student}} {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := site.c.Presentation()
			ptl, pstart, err := dmps.PresentationFromWire(*body)
			if err != nil {
				log.Println(err)
				return
			}
			player := dmps.PresentationPlayer{Site: site.name, Estimator: site.c.Estimator()}
			recs, err := player.Play(context.Background(), ptl, pstart)
			if err != nil {
				log.Println(err)
				return
			}
			mu.Lock()
			for _, r := range recs {
				meter.Add(r)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("\nlive playout across 2 clients: %d segment starts, inter-site skew %v\n",
		meter.Len(), meter.MaxInterSiteSkew().Round(time.Millisecond))
}
