// Moderated: the BFCP-style chair-moderated floor mode. Students raise
// their hands (RequestFloor queues them), the teacher approves them one
// at a time, and everyone follows the session through the event
// subscription API instead of polling — request → approve → grant, with
// queue positions pushed to waiting students.
package main

import (
	"fmt"
	"log"
	"time"

	"dmps"
)

func main() {
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		log.Fatal(err)
	}
	students := make([]*dmps.Client, 3)
	events := make([]<-chan dmps.Event, 3)
	for i := range students {
		s, err := lab.NewClient(fmt.Sprintf("Student%d", i+1), "participant", 2)
		if err != nil {
			log.Fatal(err)
		}
		students[i] = s
		// Subscribe before joining so no floor event is missed.
		events[i] = s.Subscribe(dmps.FloorEvents)
	}
	if err := teacher.Join("seminar"); err != nil {
		log.Fatal(err)
	}
	for _, s := range students {
		if err := s.Join("seminar"); err != nil {
			log.Fatal(err)
		}
	}

	// The teacher opens the moderated session and holds the floor.
	if _, err := teacher.RequestFloor("seminar", dmps.ModeratedQueue, ""); err != nil {
		log.Fatal(err)
	}

	// Every student raises a hand; the acks carry the queue positions.
	for i, s := range students {
		dec, err := s.RequestFloor("seminar", dmps.ModeratedQueue, "")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s queued at position %d\n", students[i].MemberID(), dec.QueuePosition)
	}

	// The teacher approves student 2 first — approval order, not queue
	// order, decides who speaks next in a moderated session.
	if _, err := teacher.ApproveFloor("seminar", students[1].MemberID()); err != nil {
		log.Fatal(err)
	}
	// Handing the floor over promotes the approved student.
	if err := teacher.ReleaseFloor("seminar"); err != nil {
		log.Fatal(err)
	}

	// Student 2's subscription sees queued → approved → promotion.
	for ev := range withTimeout(events[1]) {
		fmt.Printf("student2 event: %-14s holder=%-10s pos=%d\n",
			ev.Floor.Event, ev.Floor.Holder, ev.Floor.QueuePosition)
		if ev.Floor.Holder == students[1].MemberID() {
			break
		}
	}

	// The floor is theirs: the message window opens.
	if err := students[1].Chat("seminar", "thank you — question about slide 3"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("student2 spoke while", students[0].MemberID(), "and",
		students[2].MemberID(), "wait at positions",
		students[0].QueuePosition("seminar"), "and", students[2].QueuePosition("seminar"))
}

// withTimeout guards the example against hanging on a missed event.
func withTimeout(ch <-chan dmps.Event) <-chan dmps.Event {
	out := make(chan dmps.Event)
	go func() {
		defer close(out)
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					return
				}
				out <- ev
			case <-time.After(3 * time.Second):
				return
			}
		}
	}()
	return out
}
