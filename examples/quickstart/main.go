// Quickstart: bring up an in-memory DMPS deployment, join a class, chat
// under free access, and watch the boards converge — the smallest
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"dmps"
)

func main() {
	// A Lab is a full DMPS deployment: simulated network + server
	// (group administration, floor control, global clock, status lights).
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		log.Fatal(err)
	}
	student, err := lab.NewClient("Student", "participant", 2)
	if err != nil {
		log.Fatal(err)
	}

	// Event subscription: server pushes (floor changes, suspensions,
	// invitations, light transitions) arrive on a channel — no polling.
	// Subscribe before joining so nothing is missed.
	floorEvents := student.Subscribe(dmps.FloorEvents)

	// The first joiner creates the group and becomes its session chair.
	if err := teacher.Join("class"); err != nil {
		log.Fatal(err)
	}
	if err := student.Join("class"); err != nil {
		log.Fatal(err)
	}

	// Free access (the default): everyone may send to the message window.
	// The teacher makes it explicit, and the student's subscription sees
	// the grant pushed by the server.
	if _, err := teacher.RequestFloor("class", dmps.FreeAccess, ""); err != nil {
		log.Fatal(err)
	}
	select {
	case ev := <-floorEvents:
		fmt.Printf("pushed floor event: %s (mode %s)\n", ev.Floor.Event, ev.Floor.Mode)
	case <-time.After(3 * time.Second):
		log.Fatal("no floor event received")
	}

	if err := teacher.Chat("class", "welcome to DMPS"); err != nil {
		log.Fatal(err)
	}
	if err := student.Chat("class", "hello!"); err != nil {
		log.Fatal(err)
	}

	// Server-sequenced delivery: both replicas converge to the same log.
	waitFor(func() bool { return student.Board("class").Seq() == 2 && teacher.Board("class").Seq() == 2 })
	fmt.Println("student's message window:")
	fmt.Print(student.Board("class").Render())
	fmt.Println("boards equal:", teacher.Board("class").Equal(student.Board("class")))

	// Clock sync against the server's global clock.
	offset, err := student.SyncClock()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("student's offset to the global clock: %v\n", offset.Round(time.Millisecond))
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(3 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}
