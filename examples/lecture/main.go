// Lecture: the paper's distance-learning scenario (Figures 2–3). A
// teacher runs a class in Equal Control — one speaker at a time, token
// passed by the holder — annotates the whiteboard, and watches the
// status lights, including one student crashing mid-lecture.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"dmps"
	"dmps/internal/client"
)

func main() {
	lab, err := dmps.NewLab(dmps.LabOptions{
		Seed:          7,
		Link:          dmps.LinkConfig{Delay: 2 * time.Millisecond},
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  75 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	teacher := mustClient(lab, "Prof. Shih", "chair", 5)
	alice := mustClient(lab, "Alice", "participant", 2)
	bob := mustClient(lab, "Bob", "participant", 2)
	for _, c := range []*client.Client{teacher, alice, bob} {
		if err := c.Join("multimedia-101"); err != nil {
			log.Fatal(err)
		}
	}

	// The teacher takes the floor: Equal Control mutes everyone else.
	dec, err := teacher.RequestFloor("multimedia-101", dmps.EqualControl, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teacher holds the floor: %v (holder %s)\n", dec.Granted, dec.Holder)

	if err := teacher.Chat("multimedia-101", "today: Petri nets for multimedia synchronization"); err != nil {
		log.Fatal(err)
	}
	if err := teacher.Annotate("multimedia-101", "draw", "OCPN: place = media interval, transition = sync point"); err != nil {
		log.Fatal(err)
	}

	// A muted student tries to interrupt.
	if err := alice.Chat("multimedia-101", "can I say something?"); errors.Is(err, client.ErrDenied) {
		fmt.Println("alice is muted while the teacher holds the floor ✔")
	} else if err != nil {
		log.Fatal(err)
	}

	// Alice queues for the floor; the teacher passes her the token.
	if _, err := alice.RequestFloor("multimedia-101", dmps.EqualControl, ""); err != nil {
		fmt.Println("alice queued:", err)
	}
	if err := teacher.PassToken("multimedia-101", alice.MemberID()); err != nil {
		log.Fatal(err)
	}
	if err := alice.Chat("multimedia-101", "what does a token in a media place mean?"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice speaks after receiving the token ✔")

	// Figure 3(c): Bob's machine dies; the teacher's light turns red.
	bob.Drop()
	victim := bob.MemberID()
	deadline := time.Now().Add(3 * time.Second)
	for teacher.Lights()[victim] != "red" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("bob's connection light: %s (teacher can inspect the red light)\n", teacher.Lights()[victim])

	// The message window at the end of class.
	time.Sleep(20 * time.Millisecond)
	fmt.Println("\nmessage window:")
	fmt.Print(teacher.Board("multimedia-101").Render())
	fmt.Println("whiteboard strokes:", len(teacher.Board("multimedia-101").Strokes()))
}

func mustClient(lab *dmps.Lab, name, role string, priority int) *client.Client {
	c, err := lab.NewClient(name, role, priority)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
