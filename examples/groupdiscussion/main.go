// Group discussion: the paper's third and fourth floor modes. Students
// split into invitation-built breakout groups ("the user A will be the
// session chair in his small group"), discuss privately, and two of them
// open a direct-contact window — all concurrently with the class.
package main

import (
	"fmt"
	"log"
	"time"

	"dmps"
	"dmps/internal/client"
)

func main() {
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	teacher := mustClient(lab, "Teacher", "chair", 5)
	alice := mustClient(lab, "Alice", "participant", 2)
	bob := mustClient(lab, "Bob", "participant", 2)
	carol := mustClient(lab, "Carol", "participant", 2)
	all := []*client.Client{teacher, alice, bob, carol}
	for _, c := range all {
		if err := c.Join("class"); err != nil {
			log.Fatal(err)
		}
	}

	// Alice creates a breakout group and invites Bob. Accepting joins him
	// and makes Alice the breakout's session chair.
	if err := alice.Join("breakout-petri"); err != nil {
		log.Fatal(err)
	}
	inviteID, err := alice.Invite("breakout-petri", bob.MemberID())
	if err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return len(bob.PendingInvites()) > 0 })
	fmt.Printf("bob received invitation #%d from %s\n", inviteID, alice.MemberID())
	if err := bob.ReplyInvite(inviteID, true); err != nil {
		log.Fatal(err)
	}

	// Group discussion: every breakout member sends together.
	if _, err := alice.RequestFloor("breakout-petri", dmps.GroupDiscussion, ""); err != nil {
		log.Fatal(err)
	}
	if err := alice.Chat("breakout-petri", "let's model the quiz as an OCPN"); err != nil {
		log.Fatal(err)
	}
	if err := bob.Chat("breakout-petri", "agreed — one place per question"); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return bob.Board("breakout-petri").Seq() == 2 })

	// The breakout is private: Carol (not invited) sees nothing.
	fmt.Println("carol's view of the breakout board:", carol.Board("breakout-petri").Seq(), "ops (isolated ✔)")

	// Direct contact: Carol asks Bob privately, concurrently with
	// everything else.
	if _, err := carol.RequestFloor("class", dmps.DirectContact, bob.MemberID()); err != nil {
		log.Fatal(err)
	}
	if err := carol.ChatPrivate("class", bob.MemberID(), "did I miss anything?"); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return len(bob.PrivateMessages()) == 1 })
	fmt.Printf("bob's private window: %q from %s\n",
		bob.PrivateMessages()[0].Data, bob.PrivateMessages()[0].Author)

	// Meanwhile the class channel still works for everyone (free access).
	if err := teacher.Chat("class", "five more minutes"); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return carol.Board("class").Seq() >= 1 })

	fmt.Println("\nbreakout message window (alice's replica):")
	fmt.Print(alice.Board("breakout-petri").Render())
}

func mustClient(lab *dmps.Lab, name, role string, priority int) *client.Client {
	c, err := lab.NewClient(name, role, priority)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(3 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}
