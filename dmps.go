// Package dmps is the public facade of this repository: a from-scratch Go
// implementation of the Distributed Multimedia Presentation System of
// Shih, Deng, Liao, Huang and Chang ("Using the Floor Control Mechanism
// in Distributed Multimedia Presentation System", ICDCS 2001 Workshops).
//
// It re-exports the stable surface of the internal packages:
//
//   - the DOCPN presentation model: timelines, Allen-relation solving,
//     OCPN compilation and analysis, distributed simulation with the
//     global-clock firing discipline;
//   - the floor control mechanism as a pluggable policy engine: the
//     paper's four modes (Free Access, Equal Control, Group Discussion,
//     Direct Contact) plus the BFCP-style ModeratedQueue mode (the chair
//     approves queued requests), each a Policy behind FCM-Arbitrate's
//     centralized membership checks, α/β resource thresholds and
//     Media-Suspend; RegisterFloorPolicy admits custom modes;
//   - the live DMPS stack: server, client, groups, whiteboard, status
//     lights, clock synchronization, presentations — over TCP or the
//     in-memory simulated network. Clients observe the session through
//     the event subscription API (Client.Subscribe) as well as the
//     polling accessors.
//
// State reaches clients through a sequenced per-group event log: every
// state broadcast (floor events, suspend/resume, board operations, mode
// switches, invitations) is appended to its group's log and stamped
// with per-class sequence numbers before it is fanned out, so a client
// that took backpressure drops detects the hole and recovers the
// missing suffix with one request (TBackfill) — or a compact snapshot
// when the log can no longer connect it. ServerConfig.LogCap (and
// LabOptions.LogCap) sizes the retained log, default 512 events per
// group; under capacity pressure the log compacts class-wise, keeping
// each class's latest state-bearing restatement plus the recent board
// suffix, so even clients far behind usually converge from a short
// compacted suffix. The setting never affects correctness. The same
// machinery powers Client.Reconnect — a client that lost its
// connection resumes with its session token, keeping its member
// identity, group memberships and subscriptions — and
// Client.SwitchMode, the chair's explicit (optionally pinned)
// floor-mode control.
//
// Delivery is scale-hygienic. Sessions carry a server-side event-class
// mask (ClientConfig.EventClasses / Client.SetEventClasses, widened
// automatically by Client.Subscribe): logged events of unsubscribed
// classes are filtered before they touch the session's queue, so an
// uninterested member costs zero bytes under churn. Queue slots are
// private — every member sees only the queue length and their own
// position, live, in backfills and in snapshots. Queue restatements
// coalesce (ServerConfig.CoalesceInterval, default one probe tick): N
// transitions per tick cost one logged restatement. And members gone
// longer than ServerConfig.SessionTTL (default one hour) are reaped —
// token, directory entry, memberships, member log — with a later
// Reconnect failing as ErrSessionExpired.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	lab, _ := dmps.NewLab(dmps.LabOptions{})
//	defer lab.Close()
//	teacher, _ := lab.NewClient("Teacher", "chair", 5)
//	student, _ := lab.NewClient("Student", "participant", 2)
//	_ = teacher.Join("class")
//	_ = student.Join("class")
//	events := student.Subscribe(dmps.FloorEvents)
//	_ = teacher.Chat("class", "welcome to DMPS")
//
// For moderated sessions (see examples/moderated):
//
//	_, _ = student.RequestFloor("class", dmps.ModeratedQueue, "") // queued at 1
//	_, _ = teacher.ApproveFloor("class", student.MemberID())      // floor free → granted
//	ev := <-events // Floor.Event == "granted", Floor.Holder == student
//
// When the floor is busy, approval parks the student as "approved" and
// the next release promotes them (the "released" event's Holder names
// the new floor holder).
package dmps

import (
	"dmps/internal/client"
	"dmps/internal/clock"
	"dmps/internal/cluster"
	"dmps/internal/core"
	"dmps/internal/docpn"
	"dmps/internal/floor"
	"dmps/internal/media"
	"dmps/internal/netsim"
	"dmps/internal/ocpn"
	"dmps/internal/presentation"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/server"
	"dmps/internal/transport"
)

// Live-system types.
type (
	// Lab is a fully assembled in-memory DMPS deployment (simulated
	// network + server + clients).
	Lab = core.Lab
	// LabOptions configures NewLab.
	LabOptions = core.Options
	// Client is a connected DMPS participant.
	Client = client.Client
	// ClientConfig configures Dial for standalone (e.g. TCP) use.
	ClientConfig = client.Config
	// Server is a DMPS server; use NewServer for standalone deployments.
	Server = server.Server
	// ServerConfig configures NewServer.
	ServerConfig = server.Config
	// SlowConsumerPolicy selects what happens when a client's bounded
	// outbound queue at the server overflows.
	SlowConsumerPolicy = server.SlowConsumerPolicy
	// SessionStats is one session's backpressure snapshot
	// (Server.SessionStats).
	SessionStats = server.SessionStats
	// SubscriberStats is one client subscription channel's backpressure
	// snapshot (Client.SubscriberStats): local drop-on-full counters,
	// never confused with delivery gaps by the event-log plane.
	SubscriberStats = client.SubscriberStats
	// Backpressure is the wire form of a member's backpressure counters,
	// pushed with the lights table (Client.Backpressure).
	Backpressure = protocol.BackpressureBody
	// Snapshot is the wire form of a group's catch-up state (sent for
	// late joins, explicit replays, and backfills past the log ring).
	Snapshot = protocol.SnapshotBody
	// LinkConfig shapes simulated links (delay, jitter, loss).
	LinkConfig = netsim.LinkConfig
	// TCP is the real-socket transport for standalone deployments.
	TCP = transport.TCP
	// ClusterLab is a fully assembled in-memory multi-process
	// deployment: N group-partition nodes behind one router
	// (StartCluster).
	ClusterLab = core.Cluster
	// ClusterOptions configures StartCluster.
	ClusterOptions = core.ClusterOptions
	// ClusterNodeConfig turns a Server into one group-partition node of
	// a cluster (ServerConfig.Cluster).
	ClusterNodeConfig = server.ClusterConfig
	// Router is the cluster's routing tier: the one address clients
	// dial, proxying each session's traffic to the owning nodes.
	Router = cluster.Router
	// RouterConfig configures NewRouter.
	RouterConfig = cluster.RouterConfig
	// PartitionMap is the shared hash assignment of groups (and member
	// homes) to cluster nodes, with deterministic ring failover.
	PartitionMap = cluster.Map
)

// Slow-consumer policies (ServerConfig.SlowPolicy / LabOptions.SlowPolicy).
const (
	// DropNewest drops the message that does not fit and counts it.
	DropNewest = server.DropNewest
	// Disconnect tears the slow session down on the first overflow.
	Disconnect = server.Disconnect
)

// Floor control types and modes.
type (
	// FloorMode names a floor control discipline (builtin or custom).
	FloorMode = floor.Mode
	// Policy is one pluggable floor-control discipline; implement it and
	// call RegisterFloorPolicy to add a custom mode.
	Policy = floor.Policy
	// FloorState is the per-group bookkeeping a Policy manipulates.
	FloorState = floor.State
	// FloorRequest is one floor request as seen by a Policy.
	FloorRequest = floor.Request
	// Roster is the membership view a Policy consults.
	Roster = floor.Roster
	// Approver is the optional chair-approval seam a Policy may implement
	// (ModeratedQueue does).
	Approver = floor.Approver
	// ModeGate is the optional seam a Policy may implement to restrict
	// switching the group away from its mode (ModeratedQueue gates such
	// switches behind the session chair).
	ModeGate = floor.ModeGate
	// FloorDecision reports an arbitration outcome.
	FloorDecision = floor.Decision
	// Capability is a member's communication-window affordances.
	Capability = floor.Capability
	// Thresholds is the α/β resource threshold pair.
	Thresholds = resource.Thresholds
)

// The paper's four floor control modes, plus the BFCP-style moderated
// queue (chair approves queued requests) and the auto-rotating round
// robin (a release re-enqueues the holder at the tail, so contenders
// take turns without re-requesting).
const (
	FreeAccess      = floor.FreeAccess
	EqualControl    = floor.EqualControl
	GroupDiscussion = floor.GroupDiscussion
	DirectContact   = floor.DirectContact
	ModeratedQueue  = floor.ModeratedQueue
	RoundRobin      = floor.RoundRobin
)

// RegisterFloorPolicy adds a custom floor mode under the given wire name.
var RegisterFloorPolicy = floor.RegisterPolicy

// ParseFloorMode resolves a mode's wire name ("equal-control") or alias
// ("equal") — the shared parser of server, client and tools.
var ParseFloorMode = floor.ParseMode

// Client event subscription (Client.Subscribe).
type (
	// Event is one server-pushed notification.
	Event = client.Event
	// EventKind selects a class of events for Client.Subscribe.
	EventKind = client.EventKind
)

// Subscription event kinds.
const (
	// FloorEvents: grants, denials, queue-position updates, approvals.
	FloorEvents = client.FloorEvents
	// SuspendEvents: Media-Suspend and resume notices.
	SuspendEvents = client.SuspendEvents
	// InviteEvents: sub-group invitations.
	InviteEvents = client.InviteEvents
	// LightEvents: connection-light transitions.
	LightEvents = client.LightEvents
)

// ErrTimeout is returned when the server does not answer a client
// request (or the Dial handshake) within ClientConfig.Timeout.
var ErrTimeout = client.ErrTimeout

// ErrSessionExpired is returned by Client.Reconnect when the server has
// reaped the session (gone longer than ServerConfig.SessionTTL): the
// token no longer resumes anything and a fresh Dial is the way back in.
var ErrSessionExpired = client.ErrSessionExpired

// Event classes for the server-side delivery filter
// (ClientConfig.EventClasses, Client.SetEventClasses): the classes of
// logged state events a session wants pushed. Filtering runs at the
// server, before the session's delivery queue — an unsubscribed class
// costs the client zero bytes, even under churn.
const (
	// ClassFloor: floor events (grants, queueing, releases, restatements,
	// mode switches).
	ClassFloor = protocol.ClassFloor
	// ClassSuspend: Media-Suspend / resume notices.
	ClassSuspend = protocol.ClassSuspend
	// ClassBoard: whiteboard and message-window operations.
	ClassBoard = protocol.ClassBoard
	// ClassInvite: sub-group invitations.
	ClassInvite = protocol.ClassInvite
	// ClassNone subscribes to no logged class at all.
	ClassNone = protocol.ClassNone
)

// Presentation-model types.
type (
	// MediaObject is one multimedia object with kind, duration and rate.
	MediaObject = media.Object
	// MediaKind classifies media objects.
	MediaKind = media.Kind
	// Timeline is an absolute-time presentation plan.
	Timeline = ocpn.Timeline
	// ScheduledObject is one timeline item.
	ScheduledObject = ocpn.ScheduledObject
	// Spec is an Allen-relation presentation specification.
	Spec = ocpn.Spec
	// Constraint is one Allen relation between two objects.
	Constraint = ocpn.Constraint
	// OCPN is a compiled Object Composition Petri Net.
	OCPN = ocpn.Net
	// Schedule is a derived firing plan with synchronous sets.
	Schedule = ocpn.Schedule
	// SimConfig configures a DOCPN distributed simulation.
	SimConfig = docpn.Config
	// SimSite describes one simulated site (clock offset, drift, sync
	// error, control delay).
	SimSite = docpn.SiteSpec
	// SimResult is a distributed simulation outcome.
	SimResult = docpn.Result
	// Interaction is a user action injected into a simulation.
	Interaction = docpn.Interaction
)

// SkipInteraction jumps the presentation to the next synchronization
// point via the priority arcs.
const SkipInteraction = docpn.Skip

// Media kinds.
const (
	Text       = media.Text
	Image      = media.Image
	Audio      = media.Audio
	Video      = media.Video
	Annotation = media.Annotation
)

// Allen relations.
const (
	Equals   = ocpn.Equals
	Before   = ocpn.Before
	Meets    = ocpn.Meets
	Overlaps = ocpn.Overlaps
	During   = ocpn.During
	Starts   = ocpn.Starts
	Finishes = ocpn.Finishes
)

// Clock-discipline modes for simulations.
const (
	// GlobalClock is the paper's DOCPN discipline.
	GlobalClock = docpn.GlobalClock
	// LocalClock is the OCPN baseline without a global clock.
	LocalClock = docpn.LocalClock
	// NaiveClock schedules against the global timetable using the raw,
	// unsynchronized local clock (the failure mode clock sync repairs).
	NaiveClock = docpn.NaiveClock
)

// NewLab builds and starts an in-memory DMPS deployment.
func NewLab(opts LabOptions) (*Lab, error) { return core.NewLab(opts) }

// StartCluster builds and starts an in-memory multi-process cluster:
// hash-partitioned group nodes behind a routing tier, on the simulated
// network. Production clusters run the same pieces as real processes
// (cmd/dmps-server -cluster, cmd/dmps-router).
func StartCluster(opts ClusterOptions) (*ClusterLab, error) { return core.StartCluster(opts) }

// NewRouter starts a cluster routing tier (pass TCP{} as
// RouterConfig.Network for real sockets).
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// NewServer starts a standalone DMPS server (pass TCP{} as
// ServerConfig.Network for real sockets); with ServerConfig.Cluster it
// runs as one group-partition node of a cluster.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Dial connects a standalone client.
func Dial(cfg ClientConfig) (*Client, error) { return client.Dial(cfg) }

// Solve computes the absolute timeline from an Allen-relation spec.
func Solve(spec Spec) (Timeline, error) { return ocpn.Solve(spec) }

// Compile builds the OCPN for a timeline.
func Compile(tl Timeline) (*OCPN, error) { return ocpn.Compile(tl) }

// Simulate runs a DOCPN distributed simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return docpn.Run(cfg) }

// SimulateWith runs a DOCPN simulation with user interactions.
func SimulateWith(cfg SimConfig, interactions []Interaction) (*SimResult, error) {
	return docpn.RunWith(cfg, interactions)
}

// PresentationWire converts a timeline into the body broadcast by
// Client.StartPresentation.
var PresentationWire = presentation.ToWire

// PresentationPlayer plays a received presentation under global-clock
// discipline.
type PresentationPlayer = presentation.Player

// PresentationFromWire converts a received presentation body back into a
// timeline and global start instant.
var PresentationFromWire = presentation.FromWire

// WirePresentation is the broadcast form of a presentation start.
type WirePresentation = protocol.PresentBody

// ClockEstimator is a client's global-clock estimator.
type ClockEstimator = clock.Estimator

// PresentationMonitor verifies playout against the schedule at run time.
type PresentationMonitor = presentation.Monitor

// PlayoutViolation is one conformance breach a monitor found.
type PlayoutViolation = presentation.Violation

// NewPresentationMonitor builds a runtime conformance monitor for a
// compiled net, presentation start instant and tolerance.
var NewPresentationMonitor = presentation.NewMonitor
