// Command dmps-client is a line-oriented DMPS participant — the
// command-line rendering of the paper's Figure-2 communication window.
//
// Usage:
//
//	dmps-client -addr localhost:4321 -name Alice [-role participant] [-priority 2]
//
// Commands at the prompt:
//
//	join <group>                 join (auto-creating) a group
//	leave <group>                leave a group
//	chat <group> <text…>         send to the message window
//	draw <group> <data…>         draw on the whiteboard
//	clear <group>                clear the whiteboard
//	floor <group> <mode> [peer]  request the floor (free-access,
//	                             equal-control, group-discussion,
//	                             direct-contact, moderated-queue)
//	approve <group> <member>     approve a queued request (chair,
//	                             moderated-queue)
//	mode <group> <mode> [pin]    switch the group's floor mode; "pin"
//	                             (chair only) pins the policy so only
//	                             the chair may switch again
//	reconnect                    resume the session after a lost
//	                             connection (same member, no re-joins)
//	pass <group> <member>        pass the equal-control token
//	release <group>              release the floor
//	invite <group> <member>      invite a member into a group
//	accept <invite-id>           accept an invitation
//	decline <invite-id>          decline an invitation
//	private <group> <peer> <t…>  send in the direct-contact window
//	board <group>                print the message window
//	lights                       print the connection lights
//	sync                         synchronize with the global clock
//	invites                      list received invitations
//	quit                         exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/protocol"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:4321", "server address")
	name := flag.String("name", "anonymous", "display name")
	role := flag.String("role", "participant", "role: chair or participant")
	priority := flag.Int("priority", 2, "floor priority (token modes need ≥ 2)")
	flag.Parse()

	c, err := client.Dial(client.Config{
		Network:  transport.TCP{},
		Addr:     *addr,
		Name:     *name,
		Role:     *role,
		Priority: *priority,
		OnEvent:  printEvent,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-client:", err)
		return 1
	}
	defer c.Close()
	fmt.Printf("connected as %s\n", c.MemberID())

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			if err := execute(c, line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
	return 0
}

func execute(c *client.Client, line string) error {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "join":
		if err := need(1); err != nil {
			return err
		}
		return c.Join(args[0])
	case "leave":
		if err := need(1); err != nil {
			return err
		}
		return c.Leave(args[0])
	case "chat":
		if err := need(2); err != nil {
			return err
		}
		return c.Chat(args[0], strings.Join(args[1:], " "))
	case "draw":
		if err := need(2); err != nil {
			return err
		}
		return c.Annotate(args[0], "draw", strings.Join(args[1:], " "))
	case "clear":
		if err := need(1); err != nil {
			return err
		}
		return c.Annotate(args[0], "clear", "")
	case "floor":
		if err := need(2); err != nil {
			return err
		}
		mode, ok := floor.ParseMode(args[1])
		if !ok {
			return fmt.Errorf("unknown mode %q", args[1])
		}
		target := ""
		if len(args) > 2 {
			target = args[2]
		}
		dec, err := c.RequestFloor(args[0], mode, target)
		if err != nil {
			return err
		}
		fmt.Printf("granted=%v holder=%s queue=%d suspended=%v level=%s\n",
			dec.Granted, dec.Holder, dec.QueuePosition, dec.Suspended, dec.Level)
		return nil
	case "approve":
		if err := need(2); err != nil {
			return err
		}
		dec, err := c.ApproveFloor(args[0], args[1])
		if err != nil {
			return err
		}
		fmt.Printf("granted=%v holder=%s queue=%d\n", dec.Granted, dec.Holder, dec.QueuePosition)
		return nil
	case "mode":
		if err := need(2); err != nil {
			return err
		}
		mode, ok := floor.ParseMode(args[1])
		if !ok {
			return fmt.Errorf("unknown mode %q", args[1])
		}
		pin := len(args) > 2 && args[2] == "pin"
		return c.SwitchMode(args[0], mode, pin)
	case "reconnect":
		return c.Reconnect()
	case "pass":
		if err := need(2); err != nil {
			return err
		}
		return c.PassToken(args[0], args[1])
	case "release":
		if err := need(1); err != nil {
			return err
		}
		return c.ReleaseFloor(args[0])
	case "invite":
		if err := need(2); err != nil {
			return err
		}
		id, err := c.Invite(args[0], args[1])
		if err != nil {
			return err
		}
		fmt.Println("invitation id:", id)
		return nil
	case "accept", "decline":
		if err := need(1); err != nil {
			return err
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad invite id %q", args[0])
		}
		return c.ReplyInvite(id, cmd == "accept")
	case "private":
		if err := need(3); err != nil {
			return err
		}
		return c.ChatPrivate(args[0], args[1], strings.Join(args[2:], " "))
	case "board":
		if err := need(1); err != nil {
			return err
		}
		fmt.Print(c.Board(args[0]).Render())
		return nil
	case "lights":
		for id, l := range c.Lights() {
			fmt.Printf("  %-24s %s\n", id, l)
		}
		return nil
	case "sync":
		offset, err := c.SyncClock()
		if err != nil {
			return err
		}
		fmt.Printf("offset to global clock: %v\n", offset)
		return nil
	case "invites":
		for _, inv := range c.PendingInvites() {
			fmt.Printf("  #%d from %s into %s\n", inv.InviteID, inv.From, inv.Group)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printEvent surfaces server events asynchronously on the console.
func printEvent(msg protocol.Message) {
	switch msg.Type {
	case protocol.TChatEvent:
		var body protocol.SequencedBody
		if msg.Into(&body) == nil {
			fmt.Printf("\n[%s] %s: %s\n> ", msg.Group, body.Author, body.Data)
		}
	case protocol.TInviteEvent:
		var body protocol.InviteEventBody
		if msg.Into(&body) == nil {
			fmt.Printf("\ninvitation #%d from %s into %s (accept %d / decline %d)\n> ",
				body.InviteID, body.From, body.Group, body.InviteID, body.InviteID)
		}
	case protocol.TFloorEvent:
		var body protocol.FloorEventBody
		if msg.Into(&body) == nil && body.Event != "" {
			fmt.Printf("\nfloor %s: holder=%s mode=%s\n> ", body.Event, body.Holder, body.Mode)
		}
	case protocol.TSuspend:
		var body protocol.SuspendBody
		if msg.Into(&body) == nil {
			fmt.Printf("\nmedia suspended for %s (%s)\n> ", body.Member, body.Level)
		}
	}
}
