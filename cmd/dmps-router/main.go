// Command dmps-router runs the DMPS cluster routing tier on real TCP
// sockets: the one address clients dial in front of N group-partition
// nodes (cmd/dmps-server -cluster). It admits each session at the
// member's home node, proxies group traffic to each group's owner per
// the shared hash partition map, and fails partitions over to ring
// successors when a node dies.
//
// Usage:
//
//	dmps-router -addr :4320 -nodes host1:4321,host2:4321 \
//	    [-recover 2s] [-metrics :9320]
//
// The -nodes list must be identical (same order) to the one every node
// runs with: the ring order is the cluster's identity.
//
// With -recover the router self-heals: it re-dials down nodes on that
// cadence and returns any that answer to service through the
// epoch-versioned live migration (the state their partitions
// accumulated elsewhere is shipped back before traffic moves). Zero
// disables the prober.
//
// With -metrics the router serves its observability plane — proxied
// session count, routed/relayed throughput, and the partition map's
// version and down-set — as Prometheus text at http://ADDR/metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dmps/internal/cluster"
	"dmps/internal/metrics"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":4320", "listen address clients dial")
	nodes := flag.String("nodes", "", "comma-separated node addresses, in ring order")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics at http://ADDR/metrics (off when empty)")
	recoverEvery := flag.Duration("recover", 2*time.Second, "re-probe down nodes and migrate their partitions home on this cadence (0 disables)")
	wireJSON := flag.Bool("wire-json", false, "strip the binary-framing ask from client hellos; the whole cluster speaks JSON (debugging escape hatch)")
	flag.Parse()

	nodeList := strings.Split(*nodes, ",")
	for i := range nodeList {
		nodeList[i] = strings.TrimSpace(nodeList[i])
	}
	if *nodes == "" || len(nodeList) == 0 {
		fmt.Fprintln(os.Stderr, "dmps-router: -nodes is required")
		return 1
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Network:         transport.TCP{},
		Addr:            *addr,
		Nodes:           nodeList,
		RecoverInterval: *recoverEvery,
		WireJSON:        *wireJSON,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-router:", err)
		return 1
	}
	fmt.Printf("dmps-router listening on %s, %d nodes: %s\n", router.Addr(), len(nodeList), strings.Join(nodeList, ", "))
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		router.RegisterMetrics(reg)
		ln, err := reg.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmps-router: metrics:", err)
			router.Close()
			return 1
		}
		defer ln.Close()
		fmt.Printf("dmps-router metrics on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- router.Serve() }()
	select {
	case <-sig:
		fmt.Println("\ndmps-router: shutting down")
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmps-router:", err)
			router.Close()
			return 1
		}
	}
	router.Close()
	return 0
}
