// Command dmps-swarm runs the open-loop swarm harness against a
// RUNNING deployment (a single cmd/dmps-server, or cmd/dmps-router in
// front of cluster nodes) and reports floor-grant and event-propagation
// latency SLOs as a BENCH_*.json-compatible document.
//
// Usage:
//
//	dmps-swarm -addr 127.0.0.1:4320 [-nodes host1:4321,host2:4321] \
//	    [-mix lecture,reconnect-storm] [-members 16] [-ops 200] \
//	    [-mean 5ms] [-seed 1] [-out BENCH_pr6.json] [-note "..."]
//
// The -nodes list (the cluster's ring order) is used only to attribute
// per-node throughput in the report; omit it against a single server.
//
// Check mode validates a previously written report instead of running
// load — the CI gate after the swarm smoke:
//
//	dmps-swarm -check BENCH_pr6.json
//
// It exits non-zero unless every Swarm/<mix> entry present has a
// finite, non-zero p99 grant latency and zero errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/swarm"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:4320", "router or server address to swarm")
	nodes := flag.String("nodes", "", "comma-separated node addresses in ring order (per-node attribution; empty for a single server)")
	mixList := flag.String("mix", "", "comma-separated mixes to run (default: all of "+strings.Join(swarm.Mixes, ","))
	members := flag.Int("members", 8, "listener/contender pool size per mix")
	ops := flag.Int("ops", 50, "scheduled operations per mix")
	mean := flag.Duration("mean", 10*time.Millisecond, "mean inter-arrival gap (open-loop rate knob)")
	settle := flag.Duration("settle", 2*time.Second, "post-schedule settle bound per mix")
	seed := flag.Int64("seed", 1, "arrival-schedule seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	note := flag.String("note", "", "free-form note recorded in _meta")
	check := flag.String("check", "", "validate an existing report file instead of running load")
	flag.Parse()
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "dmps-swarm: "+format+"\n", args...)
		return 1
	}

	if *check != "" {
		return checkReport(*check, fail)
	}

	opts := swarm.Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			cfg.Network = transport.TCP{}
			cfg.Addr = *addr
			cfg.Timeout = *timeout
			return client.Dial(cfg)
		},
		Seed:    *seed,
		Members: *members,
		Ops:     *ops,
		Mean:    *mean,
		Settle:  *settle,
	}
	if *nodes != "" {
		list := strings.Split(*nodes, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		pmap := cluster.NewMap(list)
		opts.NodeFor = func(group string) string {
			_, owner := pmap.Owner(group)
			return owner
		}
	}
	var mixes []string
	if *mixList != "" {
		mixes = strings.Split(*mixList, ",")
		for i := range mixes {
			mixes[i] = strings.TrimSpace(mixes[i])
		}
	}

	results, err := swarm.Run(opts, mixes...)
	if err != nil {
		return fail("%v", err)
	}
	doc := swarm.Report(results, opts, *note, runtime.GOOS, runtime.GOARCH)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail("encode: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail("write %s: %v", *out, err)
	}
	for _, r := range results {
		fmt.Printf("dmps-swarm: %s: %d ops, %d errors, grant p99 %.3fms (%d samples), prop p99 %.3fms (%d samples)\n",
			r.Mix, r.Ops, r.Errors,
			r.Grant.Quantile(0.99)*1e3, r.Grant.Count(),
			r.Prop.Quantile(0.99)*1e3, r.Prop.Count())
	}
	fmt.Printf("dmps-swarm: report written to %s\n", *out)
	return 0
}

// checkReport is the CI gate: the report must parse, contain at least
// one Swarm/<mix> entry, and every entry must show zero errors and a
// finite, non-zero p99 grant latency — the smoke-level SLO that load
// actually flowed and grants actually resolved.
func checkReport(path string, fail func(string, ...any) int) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail("check: %v", err)
	}
	// _meta carries strings; decode loosely and skim only Swarm/ keys.
	var loose map[string]map[string]any
	if err := json.Unmarshal(data, &loose); err != nil {
		return fail("check: parse %s: %v", path, err)
	}
	doc := map[string]map[string]float64{}
	for name, entry := range loose {
		row := map[string]float64{}
		for unit, v := range entry {
			if f, ok := v.(float64); ok {
				row[unit] = f
			}
		}
		doc[name] = row
	}
	checked := 0
	for name, entry := range doc {
		if !strings.HasPrefix(name, "Swarm/") {
			continue
		}
		checked++
		p99 := entry["grant_p99_ms"]
		if !(p99 > 0) || p99 != p99 || p99 > 1e12 {
			return fail("check: %s: grant_p99_ms = %v, want finite and non-zero", name, p99)
		}
		if entry["grant_samples"] <= 0 {
			return fail("check: %s: no grant samples", name)
		}
		if entry["errors"] > 0 {
			return fail("check: %s: %v errors", name, entry["errors"])
		}
	}
	if checked == 0 {
		return fail("check: %s has no Swarm/ entries", path)
	}
	fmt.Printf("dmps-swarm: check OK: %d mixes in %s\n", checked, path)
	return 0
}
