// Command dmps-swarm runs the open-loop swarm harness against a
// RUNNING deployment (a single cmd/dmps-server, or cmd/dmps-router in
// front of cluster nodes) and reports floor-grant and event-propagation
// latency SLOs as a BENCH_*.json-compatible document.
//
// Usage:
//
//	dmps-swarm -addr 127.0.0.1:4320 [-nodes host1:4321,host2:4321] \
//	    [-mix lecture,reconnect-storm] [-members 16] [-ops 200] \
//	    [-mean 5ms] [-seed 1] [-out BENCH_pr7.json] [-note "..."] \
//	    [-chaos-kill 'kill $(cat node$DMPS_CHAOS_NODE.pid)'] \
//	    [-chaos-restart '...']
//
// The -nodes list (the cluster's ring order) attributes per-node
// throughput in the report and locates the chaos mix's victim; omit it
// against a single server.
//
// The chaos flags arm the chaos mix's failure injections with shell
// commands: -chaos-kill runs when the mix fells the group's owner
// (its ring index is $DMPS_CHAOS_NODE), -chaos-restart later in the
// mix to bring the process back — pair it with the router's -recover
// prober so the restarted node's partitions migrate home under a new
// epoch while load still flows. Without the flags the chaos mix runs
// as steady load.
//
// Multi-process runs split ONE seeded schedule across N generator
// processes: start N copies with -shards N -shard 0..N-1 and the same
// seed — each fires its disjoint share of the global op sequence and
// writes a per-shard report. -barrier PATH gates every process's t0 on
// a file handshake (shard i touches PATH.<mix>.ready.<i>; shard 0
// releases PATH.<mix> once all are ready), -prealloc dials each mix's
// fleet before its schedule starts, and -soak DURATION holds the
// offered rate for the duration while -scrape host:port,... samples
// the servers' /metrics on -scrape-interval into the report.
//
// -trace host:port,... (the fleet's -metrics listeners) stamps a
// sampled trace context on every swarm request and, after the mixes,
// pools the fleet's /debug/traces flight recorders into Stage/<stage>
// report entries — the per-stage decomposition of the grant SLO, which
// -merge folds across shards like every other histogram.
//
// Merge mode folds shard reports into one fleet document with the same
// schema, re-running the floor-exclusivity invariant over the pooled
// event timelines:
//
//	dmps-swarm -merge -out BENCH_merged.json shard0.json shard1.json ...
//
// Check mode validates a previously written report instead of running
// load — the CI gate after the swarm smoke:
//
//	dmps-swarm -check BENCH_pr7.json [-baseline BENCH_pr6.json -max-growth 4.0] \
//	    [-require-scrapes 2]
//
// It exits non-zero unless every Swarm/<mix> entry present has a
// finite, non-zero p99 grant latency, zero errors, and zero
// floor-exclusivity violations. With -baseline it additionally gates
// the latency trend: every mix present in BOTH documents must not have
// grown its p99 grant latency past -max-growth times the baseline's (a
// ratio; latency on shared runners is noisy, so pick a tolerant one).
// Mixes new in this run pass freely. With -require-scrapes N the
// report must carry at least one Scrape/ entry and every one must hold
// ≥ N samples of at least one dmps_ series — the soak-mode gate. With
// -require-stages N the report must carry ≥ N Stage/ entries with
// spans, whose p50 sum is non-zero and within 1.5× the largest
// measured grant p50 — the tracing-plane gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/swarm"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:4320", "router or server address to swarm")
	nodes := flag.String("nodes", "", "comma-separated node addresses in ring order (per-node attribution; empty for a single server)")
	mixList := flag.String("mix", "", "comma-separated mixes to run (default: all of "+strings.Join(swarm.Mixes, ","))
	members := flag.Int("members", 8, "listener/contender pool size per mix")
	ops := flag.Int("ops", 50, "scheduled operations per mix")
	mean := flag.Duration("mean", 10*time.Millisecond, "mean inter-arrival gap (open-loop rate knob)")
	settle := flag.Duration("settle", 2*time.Second, "post-schedule settle bound per mix")
	seed := flag.Int64("seed", 1, "arrival-schedule seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	note := flag.String("note", "", "free-form note recorded in _meta")
	check := flag.String("check", "", "validate an existing report file instead of running load")
	chaosKill := flag.String("chaos-kill", "", "shell command felling the chaos group's owner node ($DMPS_CHAOS_NODE = owner index; needs -nodes)")
	chaosRestart := flag.String("chaos-restart", "", "shell command restarting the felled node later in the chaos mix")
	baseline := flag.String("baseline", "", "with -check, gate p99 grant latencies against this prior report")
	maxGrowth := flag.Float64("max-growth", 0, "with -baseline, fail if a mix's grant_p99_ms exceeds baseline × this ratio")
	requireScrapes := flag.Int("require-scrapes", 0, "with -check, require ≥ this many /metrics samples per scraped endpoint")
	shards := flag.Int("shards", 1, "generator process count the global schedule splits across")
	shard := flag.Int("shard", 0, "this process's shard index in [0, shards)")
	merge := flag.Bool("merge", false, "merge the shard report files given as arguments into one fleet report")
	prealloc := flag.Bool("prealloc", false, "dial each mix's fleet before its schedule starts")
	barrier := flag.String("barrier", "", "path prefix of the multi-process start-gate files (use with -shards)")
	soak := flag.Duration("soak", 0, "hold the offered rate for this duration per mix instead of a fixed op count")
	scrape := flag.String("scrape", "", "comma-separated /metrics endpoints (host:port) sampled into the report while mixes run")
	scrapeInterval := flag.Duration("scrape-interval", time.Second, "interval between /metrics samples")
	traceEps := flag.String("trace", "", "comma-separated -metrics listeners whose /debug/traces flight recorders feed the report's per-stage breakdown; also stamps a sampled trace context on every swarm request")
	requireStages := flag.Int("require-stages", 0, "with -check, require ≥ this many Stage/ entries with spans, whose p50 sum stays within 1.5× the measured grant p50")
	flag.Parse()
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "dmps-swarm: "+format+"\n", args...)
		return 1
	}

	if *check != "" {
		return checkReport(*check, *baseline, *maxGrowth, *requireScrapes, *requireStages, fail)
	}
	if *merge {
		return mergeReports(flag.Args(), *out, fail)
	}

	opts := swarm.Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			cfg.Network = transport.TCP{}
			cfg.Addr = *addr
			cfg.Timeout = *timeout
			return client.Dial(cfg)
		},
		Seed:     *seed,
		Members:  *members,
		Ops:      *ops,
		Mean:     *mean,
		Settle:   *settle,
		Shards:   *shards,
		Shard:    *shard,
		Prealloc: *prealloc,
		Soak:     *soak,
		Trace:    *traceEps != "",
	}
	if *barrier != "" {
		opts.Barrier = fileBarrier(*barrier, *shards, *shard)
	}
	var pmap *cluster.Map
	if *nodes != "" {
		list := strings.Split(*nodes, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		pmap = cluster.NewMap(list)
		opts.NodeFor = func(group string) string {
			_, owner := pmap.Owner(group)
			return owner
		}
	}
	if *chaosKill != "" {
		if pmap == nil {
			return fail("-chaos-kill needs -nodes to locate the group's owner")
		}
		// The hooks run a shell command with the owner's ring index in
		// the environment, so a smoke script can kill (and later
		// restart) the real node process the chaos group lands on.
		killed := -1 // hooks run one at a time under the mix's injection lock
		hook := func(cmdline string, node int) {
			cmd := exec.Command("/bin/sh", "-c", cmdline)
			cmd.Env = append(os.Environ(), fmt.Sprintf("DMPS_CHAOS_NODE=%d", node))
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "dmps-swarm: chaos hook %q: %v\n", cmdline, err)
			}
		}
		ch := &swarm.Chaos{KillOwner: func(group string) {
			killed = pmap.Primary(group)
			hook(*chaosKill, killed)
		}}
		if *chaosRestart != "" {
			ch.Restart = func(group string) { hook(*chaosRestart, killed) }
		}
		opts.Chaos = ch
	}
	var mixes []string
	if *mixList != "" {
		mixes = strings.Split(*mixList, ",")
		for i := range mixes {
			mixes[i] = strings.TrimSpace(mixes[i])
		}
	}

	var scraper *swarm.Scraper
	if *scrape != "" {
		eps := strings.Split(*scrape, ",")
		for i := range eps {
			eps[i] = strings.TrimSpace(eps[i])
		}
		scraper = swarm.NewScraper(eps, *scrapeInterval)
		scraper.Start()
	}
	results, err := swarm.Run(opts, mixes...)
	var scrapes []swarm.ScrapeSeries
	if scraper != nil {
		scrapes = scraper.Stop()
	}
	if err != nil {
		return fail("%v", err)
	}
	doc := swarm.Report(results, scrapes, opts, *note, runtime.GOOS, runtime.GOARCH)
	if *traceEps != "" {
		eps := strings.Split(*traceEps, ",")
		for i := range eps {
			eps[i] = strings.TrimSpace(eps[i])
		}
		stages, err := swarm.CollectStages(eps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmps-swarm: trace collection: %v\n", err)
		}
		swarm.AddStageBreakdown(doc, stages)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail("encode: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail("write %s: %v", *out, err)
	}
	for _, r := range results {
		fmt.Printf("dmps-swarm: %s: %d ops, %d errors, grant p99 %.3fms (%d samples), prop p99 %.3fms (%d samples)\n",
			r.Mix, r.Ops, r.Errors,
			r.Grant.Quantile(0.99)*1e3, r.Grant.Count(),
			r.Prop.Quantile(0.99)*1e3, r.Prop.Count())
	}
	fmt.Printf("dmps-swarm: report written to %s\n", *out)
	return 0
}

// fileBarrier is the multi-process start gate as a file handshake
// under a shared path prefix (a directory all shards can reach). For
// each mix, shard i touches <prefix>.<mix>.ready.<i> and waits for the
// release file <prefix>.<mix>; shard 0 doubles as the coordinator,
// creating the release once every shard's ready file exists — no
// external choreography needed beyond starting N processes.
func fileBarrier(prefix string, shards, shard int) func(mix string) error {
	return func(mix string) error {
		gate := fmt.Sprintf("%s.%s", prefix, mix)
		ready := func(i int) string { return fmt.Sprintf("%s.ready.%d", gate, i) }
		if err := os.WriteFile(ready(shard), nil, 0o644); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		deadline := time.Now().Add(2 * time.Minute)
		if shard == 0 {
			for {
				all := true
				for i := 0; i < shards; i++ {
					if _, err := os.Stat(ready(i)); err != nil {
						all = false
						break
					}
				}
				if all {
					break
				}
				if !time.Now().Before(deadline) {
					return fmt.Errorf("barrier: shards not ready by deadline at %s", gate)
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err := os.WriteFile(gate, nil, 0o644); err != nil {
				return fmt.Errorf("barrier: %w", err)
			}
			return nil
		}
		for {
			if _, err := os.Stat(gate); err == nil {
				return nil
			}
			if !time.Now().Before(deadline) {
				return fmt.Errorf("barrier: %s never released", gate)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// mergeReports is the -merge mode: fold per-shard report files into
// one fleet document and write it like a run would.
func mergeReports(paths []string, out string, fail func(string, ...any) int) int {
	if len(paths) == 0 {
		return fail("merge: no shard report files given")
	}
	var docs []map[string]map[string]any
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fail("merge: %v", err)
		}
		var doc map[string]map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			return fail("merge: parse %s: %v", path, err)
		}
		docs = append(docs, doc)
	}
	merged, err := swarm.MergeReports(docs)
	if err != nil {
		return fail("%v", err)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return fail("merge: encode: %v", err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail("merge: write %s: %v", out, err)
	}
	fmt.Printf("dmps-swarm: merged %d shard reports into %s\n", len(paths), out)
	return 0
}

// loadReport parses a swarm report into numeric rows plus the loose
// document. _meta carries strings; keeping only float cells skims
// exactly the Swarm/ material the numeric gates read, while the loose
// form backs the structural ones (scraped series presence).
func loadReport(path string) (map[string]map[string]float64, map[string]map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var loose map[string]map[string]any
	if err := json.Unmarshal(data, &loose); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	doc := map[string]map[string]float64{}
	for name, entry := range loose {
		row := map[string]float64{}
		for unit, v := range entry {
			if f, ok := v.(float64); ok {
				row[unit] = f
			}
		}
		doc[name] = row
	}
	return doc, loose, nil
}

// checkReport is the CI gate: the report must parse, contain at least
// one Swarm/<mix> entry, and every entry must show zero errors, zero
// floor-exclusivity violations, and a finite, non-zero p99 grant
// latency — the smoke-level SLO that load actually flowed, grants
// actually resolved, and the floor stayed exclusive. With a baseline,
// each mix present in both reports must also hold its p99 grant
// latency within growth × the baseline's — the latency trend gate.
// With requireScrapes > 0, the report must carry Scrape/ entries, each
// holding at least that many samples of at least one dmps_ series.
// With requireStages > 0, the report must carry at least that many
// Stage/ entries with spans, and their p50 sum must be non-zero yet no
// more than 1.5× the largest measured grant p50 — the decomposition
// must both exist and actually account for the latency it claims to
// explain (stage time not covered by a grant, like fan-out flushes,
// keeps the sum from being an equality; 1.5× bounds the slack).
func checkReport(path, baseline string, growth float64, requireScrapes, requireStages int, fail func(string, ...any) int) int {
	doc, loose, err := loadReport(path)
	if err != nil {
		return fail("check: %v", err)
	}
	var base map[string]map[string]float64
	if baseline != "" {
		if base, _, err = loadReport(baseline); err != nil {
			return fail("check: baseline: %v", err)
		}
		if !(growth > 0) {
			return fail("check: -baseline needs -max-growth > 0")
		}
	}
	checked, scraped, staged := 0, 0, 0
	stageSum, maxGrantP50 := 0.0, 0.0
	for name, entry := range doc {
		switch {
		case strings.HasPrefix(name, "Stage/"):
			if entry["spans"] > 0 {
				staged++
				stageSum += entry["p50_ms"]
			}
			continue
		case strings.HasPrefix(name, "Scrape/"):
			scraped++
			if requireScrapes > 0 {
				if entry["samples"] < float64(requireScrapes) {
					return fail("check: %s: %v samples, want ≥ %d", name, entry["samples"], requireScrapes)
				}
				series, _ := loose[name]["series"].(map[string]any)
				longest := 0
				for seriesName, v := range series {
					if vals, ok := v.([]any); ok && strings.HasPrefix(seriesName, "dmps_") && len(vals) > longest {
						longest = len(vals)
					}
				}
				if longest < requireScrapes {
					return fail("check: %s: longest dmps_ series has %d samples, want ≥ %d", name, longest, requireScrapes)
				}
			}
			continue
		case !strings.HasPrefix(name, "Swarm/"):
			continue
		}
		checked++
		if p50 := entry["grant_p50_ms"]; p50 > maxGrantP50 {
			maxGrantP50 = p50
		}
		p99 := entry["grant_p99_ms"]
		if !(p99 > 0) || p99 != p99 || p99 > 1e12 {
			return fail("check: %s: grant_p99_ms = %v, want finite and non-zero", name, p99)
		}
		if entry["grant_samples"] <= 0 {
			return fail("check: %s: no grant samples", name)
		}
		if entry["errors"] > 0 {
			return fail("check: %s: %v errors", name, entry["errors"])
		}
		if entry["invariant_violations"] > 0 {
			return fail("check: %s: %v floor-exclusivity violations: %v",
				name, entry["invariant_violations"], loose[name]["violations"])
		}
		if prior, ok := base[name]; ok && prior["grant_p99_ms"] > 0 {
			if p99 > prior["grant_p99_ms"]*growth {
				return fail("check: %s: grant_p99_ms %.3f > %.2f× baseline %.3f",
					name, p99, growth, prior["grant_p99_ms"])
			}
		}
	}
	if checked == 0 {
		return fail("check: %s has no Swarm/ entries", path)
	}
	if requireScrapes > 0 && scraped == 0 {
		return fail("check: %s has no Scrape/ entries (soak gate)", path)
	}
	if requireStages > 0 {
		if staged < requireStages {
			return fail("check: %s: %d Stage/ entries with spans, want ≥ %d", path, staged, requireStages)
		}
		if !(stageSum > 0) {
			return fail("check: %s: stage p50 sum is zero — the breakdown recorded no latency", path)
		}
		if stageSum > 1.5*maxGrantP50 {
			return fail("check: %s: stage p50 sum %.3fms exceeds 1.5× grant p50 %.3fms — the decomposition overshoots the latency it explains",
				path, stageSum, maxGrantP50)
		}
	}
	fmt.Printf("dmps-swarm: check OK: %d mixes, %d scraped endpoints, %d traced stages in %s\n", checked, scraped, staged, path)
	return 0
}
