// Command dmps-swarm runs the open-loop swarm harness against a
// RUNNING deployment (a single cmd/dmps-server, or cmd/dmps-router in
// front of cluster nodes) and reports floor-grant and event-propagation
// latency SLOs as a BENCH_*.json-compatible document.
//
// Usage:
//
//	dmps-swarm -addr 127.0.0.1:4320 [-nodes host1:4321,host2:4321] \
//	    [-mix lecture,reconnect-storm] [-members 16] [-ops 200] \
//	    [-mean 5ms] [-seed 1] [-out BENCH_pr7.json] [-note "..."] \
//	    [-chaos-kill 'kill $(cat node$DMPS_CHAOS_NODE.pid)'] \
//	    [-chaos-restart '...']
//
// The -nodes list (the cluster's ring order) attributes per-node
// throughput in the report and locates the chaos mix's victim; omit it
// against a single server.
//
// The chaos flags arm the chaos mix's failure injections with shell
// commands: -chaos-kill runs when the mix fells the group's owner
// (its ring index is $DMPS_CHAOS_NODE), -chaos-restart later in the
// mix to bring the process back — pair it with the router's -recover
// prober so the restarted node's partitions migrate home under a new
// epoch while load still flows. Without the flags the chaos mix runs
// as steady load.
//
// Check mode validates a previously written report instead of running
// load — the CI gate after the swarm smoke:
//
//	dmps-swarm -check BENCH_pr7.json [-baseline BENCH_pr6.json -max-growth 4.0]
//
// It exits non-zero unless every Swarm/<mix> entry present has a
// finite, non-zero p99 grant latency and zero errors. With -baseline
// it additionally gates the latency trend: every mix present in BOTH
// documents must not have grown its p99 grant latency past -max-growth
// times the baseline's (a ratio; latency on shared runners is noisy,
// so pick a tolerant one). Mixes new in this run pass freely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/swarm"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:4320", "router or server address to swarm")
	nodes := flag.String("nodes", "", "comma-separated node addresses in ring order (per-node attribution; empty for a single server)")
	mixList := flag.String("mix", "", "comma-separated mixes to run (default: all of "+strings.Join(swarm.Mixes, ","))
	members := flag.Int("members", 8, "listener/contender pool size per mix")
	ops := flag.Int("ops", 50, "scheduled operations per mix")
	mean := flag.Duration("mean", 10*time.Millisecond, "mean inter-arrival gap (open-loop rate knob)")
	settle := flag.Duration("settle", 2*time.Second, "post-schedule settle bound per mix")
	seed := flag.Int64("seed", 1, "arrival-schedule seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	note := flag.String("note", "", "free-form note recorded in _meta")
	check := flag.String("check", "", "validate an existing report file instead of running load")
	chaosKill := flag.String("chaos-kill", "", "shell command felling the chaos group's owner node ($DMPS_CHAOS_NODE = owner index; needs -nodes)")
	chaosRestart := flag.String("chaos-restart", "", "shell command restarting the felled node later in the chaos mix")
	baseline := flag.String("baseline", "", "with -check, gate p99 grant latencies against this prior report")
	maxGrowth := flag.Float64("max-growth", 0, "with -baseline, fail if a mix's grant_p99_ms exceeds baseline × this ratio")
	flag.Parse()
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "dmps-swarm: "+format+"\n", args...)
		return 1
	}

	if *check != "" {
		return checkReport(*check, *baseline, *maxGrowth, fail)
	}

	opts := swarm.Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			cfg.Network = transport.TCP{}
			cfg.Addr = *addr
			cfg.Timeout = *timeout
			return client.Dial(cfg)
		},
		Seed:    *seed,
		Members: *members,
		Ops:     *ops,
		Mean:    *mean,
		Settle:  *settle,
	}
	var pmap *cluster.Map
	if *nodes != "" {
		list := strings.Split(*nodes, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		pmap = cluster.NewMap(list)
		opts.NodeFor = func(group string) string {
			_, owner := pmap.Owner(group)
			return owner
		}
	}
	if *chaosKill != "" {
		if pmap == nil {
			return fail("-chaos-kill needs -nodes to locate the group's owner")
		}
		// The hooks run a shell command with the owner's ring index in
		// the environment, so a smoke script can kill (and later
		// restart) the real node process the chaos group lands on.
		killed := -1 // hooks run one at a time under the mix's injection lock
		hook := func(cmdline string, node int) {
			cmd := exec.Command("/bin/sh", "-c", cmdline)
			cmd.Env = append(os.Environ(), fmt.Sprintf("DMPS_CHAOS_NODE=%d", node))
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "dmps-swarm: chaos hook %q: %v\n", cmdline, err)
			}
		}
		ch := &swarm.Chaos{KillOwner: func(group string) {
			killed = pmap.Primary(group)
			hook(*chaosKill, killed)
		}}
		if *chaosRestart != "" {
			ch.Restart = func(group string) { hook(*chaosRestart, killed) }
		}
		opts.Chaos = ch
	}
	var mixes []string
	if *mixList != "" {
		mixes = strings.Split(*mixList, ",")
		for i := range mixes {
			mixes[i] = strings.TrimSpace(mixes[i])
		}
	}

	results, err := swarm.Run(opts, mixes...)
	if err != nil {
		return fail("%v", err)
	}
	doc := swarm.Report(results, opts, *note, runtime.GOOS, runtime.GOARCH)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail("encode: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail("write %s: %v", *out, err)
	}
	for _, r := range results {
		fmt.Printf("dmps-swarm: %s: %d ops, %d errors, grant p99 %.3fms (%d samples), prop p99 %.3fms (%d samples)\n",
			r.Mix, r.Ops, r.Errors,
			r.Grant.Quantile(0.99)*1e3, r.Grant.Count(),
			r.Prop.Quantile(0.99)*1e3, r.Prop.Count())
	}
	fmt.Printf("dmps-swarm: report written to %s\n", *out)
	return 0
}

// loadReport parses a swarm report into numeric rows. _meta carries
// strings; decoding loosely and keeping only float cells skims exactly
// the Swarm/ material the gates read.
func loadReport(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var loose map[string]map[string]any
	if err := json.Unmarshal(data, &loose); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	doc := map[string]map[string]float64{}
	for name, entry := range loose {
		row := map[string]float64{}
		for unit, v := range entry {
			if f, ok := v.(float64); ok {
				row[unit] = f
			}
		}
		doc[name] = row
	}
	return doc, nil
}

// checkReport is the CI gate: the report must parse, contain at least
// one Swarm/<mix> entry, and every entry must show zero errors and a
// finite, non-zero p99 grant latency — the smoke-level SLO that load
// actually flowed and grants actually resolved. With a baseline, each
// mix present in both reports must also hold its p99 grant latency
// within growth × the baseline's — the latency trend gate.
func checkReport(path, baseline string, growth float64, fail func(string, ...any) int) int {
	doc, err := loadReport(path)
	if err != nil {
		return fail("check: %v", err)
	}
	var base map[string]map[string]float64
	if baseline != "" {
		if base, err = loadReport(baseline); err != nil {
			return fail("check: baseline: %v", err)
		}
		if !(growth > 0) {
			return fail("check: -baseline needs -max-growth > 0")
		}
	}
	checked := 0
	for name, entry := range doc {
		if !strings.HasPrefix(name, "Swarm/") {
			continue
		}
		checked++
		p99 := entry["grant_p99_ms"]
		if !(p99 > 0) || p99 != p99 || p99 > 1e12 {
			return fail("check: %s: grant_p99_ms = %v, want finite and non-zero", name, p99)
		}
		if entry["grant_samples"] <= 0 {
			return fail("check: %s: no grant samples", name)
		}
		if entry["errors"] > 0 {
			return fail("check: %s: %v errors", name, entry["errors"])
		}
		if prior, ok := base[name]; ok && prior["grant_p99_ms"] > 0 {
			if p99 > prior["grant_p99_ms"]*growth {
				return fail("check: %s: grant_p99_ms %.3f > %.2f× baseline %.3f",
					name, p99, growth, prior["grant_p99_ms"])
			}
		}
	}
	if checked == 0 {
		return fail("check: %s has no Swarm/ entries", path)
	}
	fmt.Printf("dmps-swarm: check OK: %d mixes in %s\n", checked, path)
	return 0
}
