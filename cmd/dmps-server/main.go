// Command dmps-server runs a DMPS server on real TCP sockets.
//
// Usage:
//
//	dmps-server [-addr :4321] [-probe 500ms] [-alpha 0.5] [-beta 0.15]
//	            [-session-ttl 1h] [-cluster host1:4321,host2:4321 -node 0]
//	            [-rf 2] [-wal /var/lib/dmps/node0] [-metrics :9321]
//
// With -metrics the server serves its observability plane — session,
// coalesce, grouplog and (in cluster mode) forward-pool and
// partition-map series — as Prometheus text at http://ADDR/metrics.
// See docs/OPERATIONS.md for the series and their meanings.
//
// Clients (cmd/dmps-client) connect, join groups, request the floor and
// chat; the server centralizes group administration, floor arbitration,
// the global clock and the connection lights.
//
// With -cluster the server runs as one group-partition node of a
// multi-process cluster: -cluster lists every node address in ring
// order (identical on all nodes and on cmd/dmps-router) and -node is
// this process's index in that list. The node serves only its hash
// partitions, homes only its members, and replicates every logged
// append to -rf minus one ring successors (acked, with resend) so any
// rf-1 simultaneous node losses keep every logged event.
//
// With -wal the server journals logged state to a write-ahead segment
// store in the given directory and replays it on start, resuming at
// the same event-log cursors — the full-restart durability leg. Give
// every node its own directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dmps/internal/metrics"
	"dmps/internal/resource"
	"dmps/internal/server"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":4321", "listen address")
	probe := flag.Duration("probe", 500*time.Millisecond, "status probe interval")
	alpha := flag.Float64("alpha", 0.5, "α threshold: basic resource availability")
	beta := flag.Float64("beta", 0.15, "β threshold: minimal resource availability")
	sessionTTL := flag.Duration("session-ttl", time.Hour, "reap members whose sessions stay silent this long")
	clusterNodes := flag.String("cluster", "", "comma-separated node addresses in ring order; enables cluster mode")
	nodeIdx := flag.Int("node", 0, "this node's index in -cluster")
	rf := flag.Int("rf", 0, "replication factor: nodes holding each logged append (default 2 in cluster mode)")
	walDir := flag.String("wal", "", "write-ahead log directory; journals and replays logged state (off when empty)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics at http://ADDR/metrics (off when empty)")
	wireJSON := flag.Bool("wire-json", false, "refuse binary wire framing; every session speaks JSON (debugging escape hatch)")
	flag.Parse()

	mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: *alpha, Beta: *beta})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-server:", err)
		return 1
	}
	cfg := server.Config{
		Network:       transport.TCP{},
		Addr:          *addr,
		Monitor:       mon,
		ProbeInterval: *probe,
		SessionTTL:    *sessionTTL,
		WireJSON:      *wireJSON,
	}
	if *clusterNodes != "" {
		nodes := strings.Split(*clusterNodes, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		cfg.Cluster = &server.ClusterConfig{Nodes: nodes, Self: *nodeIdx, ReplicationFactor: *rf}
	}
	cfg.WALDir = *walDir
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-server:", err)
		return 1
	}
	if cfg.Cluster != nil {
		fmt.Printf("dmps-server node %d/%d listening on %s (α=%.2f β=%.2f probe=%v)\n",
			*nodeIdx, len(cfg.Cluster.Nodes), srv.Addr(), *alpha, *beta, *probe)
	} else {
		fmt.Printf("dmps-server listening on %s (α=%.2f β=%.2f probe=%v)\n", srv.Addr(), *alpha, *beta, *probe)
	}
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		srv.RegisterMetrics(reg)
		ln, err := reg.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmps-server: metrics:", err)
			srv.Close()
			return 1
		}
		defer ln.Close()
		fmt.Printf("dmps-server metrics on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case <-sig:
		fmt.Println("\ndmps-server: shutting down")
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmps-server:", err)
			srv.Close()
			return 1
		}
	}
	srv.Close()
	return 0
}
