// Command dmps-benchjson converts `go test -bench` output into the
// repository's BENCH_*.json format and gates the log plane's headline
// invariants: with the event-log append on the broadcast hot path,
// encodes/op must stay at exactly one Encode per broadcast, and with
// restatement coalescing on, queue churn must log at most one "queue"
// restatement per queue-shifting transition
// (logged_queue_events/transition from BenchmarkQueueChurn), and an
// annotation storm must coalesce board ops into per-tick batches
// (logged_board_events/op from BenchmarkBoardStorm). CI pipes the
// bench output through it and fails the step on a regression.
//
// With -baseline it additionally gates the wire-cost trend: every
// benchmark present in BOTH the baseline document and this run must
// not have grown its B/op or allocs/op by more than -max-growth
// (a ratio; 1.30 allows 30% drift for allocator noise). Benchmarks
// new in this run pass freely — the trend gate never blocks adding
// coverage, only regressing what is already measured.
//
// With -ceiling NAME=B_op:allocs_op (repeatable) it pins named
// benchmarks to ABSOLUTE budgets, independent of any baseline: the
// relative trend gate tolerates small drift each run, so a sequence
// of individually-passing regressions could quietly erase the binary
// wire path's allocation win — the ceiling makes that impossible. A
// ceiling on a benchmark missing from the input fails rather than
// passing vacuously.
//
// Usage:
//
//	go test -run='^$' -bench='BenchmarkBroadcast|BenchmarkQueueChurn|BenchmarkBoardStorm|BenchmarkClusterBroadcast' -benchmem . \
//	  | go run ./cmd/dmps-benchjson -out BENCH_pr6.json -max-encodes 1.0 -max-queue-churn 1.0 -max-board-storm 0.5 \
//	      -baseline BENCH_pr5.json -max-growth 1.30 -note "..."
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result row: name, iterations, then
// whitespace-separated "value unit" metric pairs. The name is kept
// verbatim (including Go's -GOMAXPROCS suffix on multi-core hosts):
// guessing which trailing -N is the procs suffix would corrupt
// sub-benchmark names like members-32 on single-core runners.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// metrics is one benchmark's parsed measurements, keyed by unit with
// "/" flattened to "_" ("ns/op" → "ns_op"), matching BENCH_baseline.json.
type metrics map[string]float64

func parse(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[3])
		row := make(metrics)
		for i := 0; i+1 < len(rest); i += 2 {
			val, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			unit := strings.ReplaceAll(rest[i+1], "/", "_")
			row[unit] = val
		}
		if len(row) > 0 {
			out[name] = row
		}
	}
	return out, sc.Err()
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	maxEncodes := flag.Float64("max-encodes", 0, "fail if any encodes/op metric exceeds this (0 disables the gate)")
	maxQueueChurn := flag.Float64("max-queue-churn", 0, "fail if any logged_queue_events/transition metric exceeds this (0 disables the gate)")
	maxBoardStorm := flag.Float64("max-board-storm", 0, "fail if any logged_board_events/op metric exceeds this (0 disables the gate)")
	baseline := flag.String("baseline", "", "prior BENCH_*.json to gate B/op and allocs/op growth against")
	maxGrowth := flag.Float64("max-growth", 1.30, "fail if B/op or allocs/op grows past baseline×this ratio (with -baseline)")
	note := flag.String("note", "", "free-form note recorded under _meta")
	// Absolute ceilings complement the relative trend gate: the trend
	// gate only catches drift between adjacent runs, so N small
	// regressions can each pass while their product erases a headline
	// win. A ceiling pins the benchmark to an absolute budget forever.
	ceilings := make(map[string][2]float64)
	flag.Func("ceiling", "absolute cap `NAME=B_op:allocs_op` (repeatable); the named benchmark must be present and stay at or under both budgets", func(s string) error {
		name, rest, ok := strings.Cut(s, "=")
		if !ok || name == "" {
			return fmt.Errorf("want NAME=B_op:allocs_op, got %q", s)
		}
		bs, as, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("want NAME=B_op:allocs_op, got %q", s)
		}
		maxB, err := strconv.ParseFloat(bs, 64)
		if err != nil {
			return fmt.Errorf("bad B_op budget in %q: %w", s, err)
		}
		maxA, err := strconv.ParseFloat(as, 64)
		if err != nil {
			return fmt.Errorf("bad allocs_op budget in %q: %w", s, err)
		}
		ceilings[name] = [2]float64{maxB, maxA}
		return nil
	})
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rows, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("no benchmark rows found in input"))
	}

	// The gates: encodes/op proves the encode-once invariant held with
	// the log append on the hot path; logged_queue_events/transition
	// proves queue churn still coalesces into per-tick restatements.
	// Requiring at least one matching metric keeps each enabled gate
	// from passing vacuously when the bench selection or output format
	// drifts.
	gate := func(unit string, max float64, what string) {
		gated := 0
		for name, row := range rows {
			val, ok := row[unit]
			if !ok {
				continue
			}
			gated++
			if val > max {
				fatal(fmt.Errorf("%s: %s %.3f exceeds %.3f — %s regressed", name, unit, val, max, what))
			}
		}
		if gated == 0 {
			fatal(fmt.Errorf("no %s metrics in input: the gate would pass vacuously", unit))
		}
	}
	if *maxEncodes > 0 {
		gate("encodes_op", *maxEncodes, "the encode-once invariant")
	}
	if *maxQueueChurn > 0 {
		gate("logged_queue_events_transition", *maxQueueChurn, "queue-restatement coalescing")
	}
	if *maxBoardStorm > 0 {
		gate("logged_board_events_op", *maxBoardStorm, "board-op storm coalescing")
	}
	if *baseline != "" {
		if err := gateTrend(*baseline, rows, *maxGrowth); err != nil {
			fatal(err)
		}
	}
	for name, lim := range ceilings {
		row, ok := rows[name]
		if !ok {
			// Multi-core hosts suffix names with -GOMAXPROCS; accept
			// exactly one such row so ceilings written on a single-core
			// runner keep gating elsewhere — but never pass vacuously.
			row, ok = findSuffixed(rows, name)
		}
		if !ok {
			fatal(fmt.Errorf("ceiling %s: benchmark not in input — the gate would pass vacuously", name))
		}
		if b := row["B_op"]; b > lim[0] {
			fatal(fmt.Errorf("%s: B/op %.0f exceeds absolute ceiling %.0f", name, b, lim[0]))
		}
		if a := row["allocs_op"]; a > lim[1] {
			fatal(fmt.Errorf("%s: allocs/op %.0f exceeds absolute ceiling %.0f", name, a, lim[1]))
		}
	}

	doc := make(map[string]any, len(rows)+1)
	doc["_meta"] = map[string]string{
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"note":   *note,
	}
	for name, row := range rows {
		doc[name] = row
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// gateTrend compares this run's wire-cost units against a prior
// BENCH_*.json: any benchmark present in both documents must keep
// B/op and allocs/op within baseline×maxGrowth. Comparing only the
// intersection keeps renamed or newly added benchmarks from tripping
// (or silently escaping) the gate, and — like gate above — an empty
// intersection fails rather than passing vacuously.
func gateTrend(path string, rows map[string]metrics, maxGrowth float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	// _meta holds strings; decode per entry and keep only numeric rows.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	base := make(map[string]metrics, len(raw))
	for name, blob := range raw {
		var row metrics
		if json.Unmarshal(blob, &row) == nil {
			base[name] = row
		}
	}
	compared := 0
	for name, row := range rows {
		ref, ok := base[name]
		if !ok {
			continue
		}
		for _, unit := range []string{"B_op", "allocs_op"} {
			was, okWas := ref[unit]
			now, okNow := row[unit]
			if !okWas || !okNow || was <= 0 {
				continue
			}
			compared++
			if now > was*maxGrowth {
				return fmt.Errorf("%s: %s %.0f exceeds baseline %.0f×%.2f — wire cost regressed vs %s",
					name, unit, now, was, maxGrowth, path)
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks shared with baseline %s: the trend gate would pass vacuously", path)
	}
	return nil
}

// findSuffixed looks for exactly one row named name-N (Go's GOMAXPROCS
// suffix). Two or more matches means the name was ambiguous — treat as
// absent and let the caller fail loudly.
func findSuffixed(rows map[string]metrics, name string) (metrics, bool) {
	var found metrics
	matches := 0
	for n, row := range rows {
		rest, ok := strings.CutPrefix(n, name+"-")
		if !ok {
			continue
		}
		if _, err := strconv.Atoi(rest); err != nil {
			continue
		}
		found = row
		matches++
	}
	return found, matches == 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmps-benchjson:", err)
	os.Exit(1)
}
