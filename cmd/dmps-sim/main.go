// Command dmps-sim compiles a presentation scenario to an OCPN, prints
// its analysis, firing timetable and synchronous sets (the Figure-1
// reproduction), optionally emits Graphviz DOT, and runs the distributed
// DOCPN simulation across configurable sites.
//
// Usage:
//
//	dmps-sim [-scenario file.json] [-dot] [-sites 3] [-spread 50ms]
//	         [-syncerr 2ms] [-baseline]
//
// Without -scenario it runs the built-in Figure-1 lecture. The scenario
// format is documented in internal/scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmps/internal/docpn"
	"dmps/internal/experiments"
	"dmps/internal/ocpn"
	"dmps/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (default: built-in lecture)")
	dot := flag.Bool("dot", false, "print the Graphviz DOT of the net and exit")
	sites := flag.Int("sites", 3, "number of simulated sites")
	spread := flag.Duration("spread", 50*time.Millisecond, "control-delay spread across sites")
	syncErr := flag.Duration("syncerr", 2*time.Millisecond, "clock-sync residual error")
	baseline := flag.Bool("baseline", false, "disable the global clock (OCPN baseline)")
	flag.Parse()

	var tl ocpn.Timeline
	var err error
	if *scenarioPath != "" {
		spec, serr := scenario.Load(*scenarioPath)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "dmps-sim:", serr)
			return 1
		}
		tl, err = ocpn.Solve(spec)
	} else {
		tl, err = experiments.LectureTimeline()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-sim:", err)
		return 1
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-sim:", err)
		return 1
	}
	if *dot {
		fmt.Print(net.DOT("dmps_presentation"))
		return 0
	}
	if err := net.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "dmps-sim: verification failed:", err)
		return 1
	}
	sched := net.DeriveSchedule()
	fmt.Println("— compiled OCPN —")
	stats := net.Base.Stats()
	fmt.Printf("places=%d transitions=%d priority-arcs=%d\n", stats.Places, stats.Transitions, stats.PriorityArcs)
	g, err := net.Base.Reachability(net.InitialMarking(), 100_000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-sim:", err)
		return 1
	}
	fmt.Printf("safe=%v conservative=%v deadlocks=%d\n", g.IsSafe(), g.IsConservative(), len(g.Deadlocks(net.Base)))
	fmt.Println("\n— firing timetable (synchronous sets) —")
	fmt.Print(sched.TimetableString())

	mode := docpn.GlobalClock
	if *baseline {
		mode = docpn.LocalClock
	}
	var specs []docpn.SiteSpec
	for i := 0; i < *sites; i++ {
		frac := time.Duration(0)
		if *sites > 1 {
			frac = time.Duration(i) * *spread / time.Duration(*sites-1)
		}
		specs = append(specs, docpn.SiteSpec{
			Name:         fmt.Sprintf("site-%d", i),
			ControlDelay: time.Millisecond + frac,
			SyncErr:      time.Duration(i%3-1) * *syncErr,
			Drift:        float64(i-(*sites/2)) * 40e-6,
		})
	}
	res, err := docpn.Run(docpn.Config{Timeline: tl, Sites: specs, Mode: mode})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmps-sim:", err)
		return 1
	}
	fmt.Printf("\n— distributed run (%v, %d sites, spread %v) —\n", mode, *sites, *spread)
	fmt.Printf("finished=%v playout-records=%d\n", res.Finished, res.Meter.Len())
	fmt.Printf("max inter-site skew: %v\n", res.Meter.MaxInterSiteSkew().Round(100*time.Microsecond))
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	fmt.Printf("max firing error vs schedule: %v\n", res.MaxFiringError(origin, sched).Round(100*time.Microsecond))
	return 0
}
