// Command dmps-bench runs the full experiment suite (F1–F3, E1–E11 of
// DESIGN.md §4) and prints every table EXPERIMENTS.md records.
//
// Usage:
//
//	dmps-bench [-only E11] [-full]
//
// -full widens the sweeps (more group sizes and clients); the default
// parameters finish in a few seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmps/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "run a single experiment (F1..F3, E1..E10)")
	full := flag.Bool("full", false, "widen sweeps (slower, more rows)")
	flag.Parse()

	e1Sizes := []int{2, 8, 24}
	e6Sizes := []int{4, 8, 16}
	e8Sizes := []int{2, 8, 32}
	e9Sizes := []int{2, 8, 16}
	e10Sizes := []int{2, 8}
	e11Sizes := []int{2, 8, 32}
	e11Groups := []int{1, 4, 16}
	e12Nodes := []int{1, 2, 4}
	e12Cycles := 100
	e7K := 3
	if *full {
		e1Sizes = []int{2, 8, 24, 48, 64}
		e6Sizes = []int{4, 8, 16, 32}
		e8Sizes = []int{2, 8, 32, 64, 128}
		e9Sizes = []int{2, 8, 16, 32, 64}
		e10Sizes = []int{2, 8, 16, 32}
		e11Sizes = []int{2, 8, 32, 64, 128}
		e11Groups = []int{1, 4, 16, 64, 256}
		e12Nodes = []int{1, 2, 4, 8}
		e12Cycles = 400
		e7K = 4
	}

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"F1", experiments.RunF1},
		{"F2", experiments.RunF2},
		{"F3", experiments.RunF3},
		{"E1", func() (*experiments.Table, error) { return experiments.RunE1(e1Sizes) }},
		{"E2", experiments.RunE2},
		{"E3", experiments.RunE3},
		{"E4", experiments.RunE4},
		{"E5", experiments.RunE5},
		{"E6", func() (*experiments.Table, error) { return experiments.RunE6(e6Sizes) }},
		{"E7", func() (*experiments.Table, error) { return experiments.RunE7(e7K) }},
		{"E8", func() (*experiments.Table, error) { return experiments.RunE8(e8Sizes) }},
		{"E9", func() (*experiments.Table, error) { return experiments.RunE9(e9Sizes) }},
		{"E10", func() (*experiments.Table, error) { return experiments.RunE10(e10Sizes) }},
		{"E11", func() (*experiments.Table, error) { return experiments.RunE11(e11Sizes, e11Groups) }},
		{"E12", func() (*experiments.Table, error) { return experiments.RunE12(e12Nodes, e12Cycles) }},
		{"A1", experiments.RunA1},
	}
	failures := 0
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.id) {
			continue
		}
		start := time.Now()
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failures++
			continue
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return 1
	}
	return 0
}
