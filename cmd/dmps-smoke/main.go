// Command dmps-smoke drives the quickstart flow against a RUNNING
// cluster (cmd/dmps-router + cmd/dmps-server -cluster) across a
// partition boundary, and exits non-zero if anything fails to
// converge. CI uses it as the multi-process end-to-end check
// (scripts/cluster_smoke.sh boots the processes); operators can point
// it at a deployment as a health probe.
//
// Usage:
//
//	dmps-smoke -router 127.0.0.1:4320 -nodes host1:4321,host2:4321 \
//	    [-metrics 127.0.0.1:7150,127.0.0.1:7151]
//
// The -nodes list (the same ring order the cluster runs with) is used
// only to compute partition ownership, so the flow provably crosses
// nodes: member homes on both, one group owned by each. With -metrics
// it additionally scrapes each listed observability endpoint after the
// flow and fails unless every one serves Prometheus text with dmps_
// series, fleet-wide the replication-durability, tracing-plane and
// runtime series exist (partition-map epoch, ack latency, unacked
// gauge, dmps_stage_seconds, trace counters, goroutine/heap gauges;
// plus the WAL series with -wal), and every endpoint serves the
// /debug/traces flight recorder as valid JSON — the probe that the
// fleet is observable, not just alive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/transport"
)

func main() {
	os.Exit(run())
}

// pick returns a key with the wanted primary owner.
func pick(m *cluster.Map, prefix string, owner int) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if m.Primary(key) == owner {
			return key
		}
	}
}

// waitFor polls until ok or the deadline; it reports success.
func waitFor(ok func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func run() int {
	router := flag.String("router", "127.0.0.1:4320", "router address")
	nodes := flag.String("nodes", "", "comma-separated node addresses, in the cluster's ring order")
	metricsAddrs := flag.String("metrics", "", "comma-separated metrics endpoints to scrape (host:port, empty skips the probe)")
	expectWAL := flag.Bool("wal", false, "with -metrics, also require the WAL series (nodes run with -wal)")
	prefix := flag.String("prefix", "smoke", "name prefix for members and groups (vary it to re-run against a deployment that remembers the last run)")
	flag.Parse()
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "dmps-smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	nodeList := strings.Split(*nodes, ",")
	for i := range nodeList {
		nodeList[i] = strings.TrimSpace(nodeList[i])
	}
	if *nodes == "" || len(nodeList) < 2 {
		return fail("-nodes needs at least two addresses")
	}
	pmap := cluster.NewMap(nodeList)

	dial := func(name, role string, prio int) (*client.Client, error) {
		return client.Dial(client.Config{
			Network: transport.TCP{}, Addr: *router,
			Name: name, Role: role, Priority: prio,
			Timeout: 5 * time.Second,
		})
	}
	// Members homed on different nodes (the hash runs over the
	// sanitized name), groups owned by each node.
	teacher, err := dial(pick(pmap, *prefix+"-t", 0), "chair", 5)
	if err != nil {
		return fail("dial teacher: %v", err)
	}
	defer teacher.Close()
	student, err := dial(pick(pmap, *prefix+"-s", 1), "participant", 3)
	if err != nil {
		return fail("dial student: %v", err)
	}
	defer student.Close()
	g0 := pick(pmap, *prefix+"-class", 0)
	g1 := pick(pmap, *prefix+"-lab", 1)

	// Quickstart across the boundary: both join both groups, the
	// teacher takes the floor in each and posts a line.
	for _, g := range []string{g0, g1} {
		if err := teacher.Join(g); err != nil {
			return fail("teacher join %s: %v", g, err)
		}
		if err := student.Join(g); err != nil {
			return fail("student join %s: %v", g, err)
		}
		dec, err := teacher.RequestFloor(g, floor.EqualControl, "")
		if err != nil || !dec.Granted {
			return fail("floor in %s: dec=%+v err=%v", g, dec, err)
		}
		if err := teacher.Chat(g, "welcome to "+g); err != nil {
			return fail("chat in %s: %v", g, err)
		}
		if !waitFor(func() bool { return student.Board(g).Seq() == 1 }) {
			return fail("board in %s never reached the student", g)
		}
		if !waitFor(func() bool { return student.Holder(g) == teacher.MemberID() }) {
			return fail("floor event in %s never reached the student", g)
		}
	}
	// An invitation whose invitee's home is the other node.
	breakout := pick(pmap, *prefix+"-breakout", 0)
	if err := teacher.Join(breakout); err != nil {
		return fail("join %s: %v", breakout, err)
	}
	inviteID, err := teacher.Invite(breakout, student.MemberID())
	if err != nil {
		return fail("cross-node invite: %v", err)
	}
	if !waitFor(func() bool { return len(student.PendingInvites()) == 1 }) {
		return fail("invitation never crossed to the student's home node")
	}
	if err := student.ReplyInvite(inviteID, true); err != nil {
		return fail("accept: %v", err)
	}
	if err := student.Chat(breakout, "present"); err != nil {
		return fail("chat after accept: %v", err)
	}
	if !waitFor(func() bool { return teacher.Board(breakout).Seq() == 1 }) {
		return fail("breakout board never converged")
	}
	// The homes really are on different nodes — the whole point. (The
	// member-ID prefix is the sanitized name the home hash runs over.)
	tHome := pmap.Primary(cluster.HomeKey(teacher.MemberID()))
	sHome := pmap.Primary(cluster.HomeKey(student.MemberID()))
	if tHome == sHome {
		return fail("member homes collapsed onto one node")
	}
	// The observability probe: every listed endpoint must scrape, and
	// across the fleet the replication-durability series must exist —
	// the check that the new cluster plane is observable, not merely
	// wired.
	if *metricsAddrs != "" {
		var union strings.Builder
		for _, addr := range strings.Split(*metricsAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			body, err := scrape(addr)
			if err != nil {
				return fail("metrics %s: %v", addr, err)
			}
			union.WriteString(body)
			fmt.Printf("dmps-smoke: metrics OK at http://%s/metrics\n", addr)
		}
		// The wire series prove the binary framing + flush batching
		// plane is observable: bytes by direction, flush count, and
		// the batching-efficiency ratio. The stage/trace series prove
		// the causal tracing plane is registered fleet-wide.
		want := []string{
			"dmps_cluster_map_epoch", "dmps_repl_ack_latency_seconds", "dmps_repl_unacked",
			"dmps_wire_bytes_total", "dmps_wire_flushes_total", "dmps_wire_msgs_per_flush",
			"dmps_stage_seconds", "dmps_trace_spans_total", "dmps_traces_total",
			"dmps_goroutines", "dmps_heap_bytes",
		}
		if *expectWAL {
			want = append(want, "dmps_wal_segments", "dmps_wal_bytes")
		}
		for _, name := range want {
			if !strings.Contains(union.String(), name) {
				return fail("metrics: no endpoint serves %s", name)
			}
		}
		// Every observability listener must also serve the tracing
		// plane's flight recorder as valid JSON.
		for _, addr := range strings.Split(*metricsAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := probeTraces(addr); err != nil {
				return fail("traces %s: %v", addr, err)
			}
			fmt.Printf("dmps-smoke: traces OK at http://%s/debug/traces\n", addr)
		}
	}
	fmt.Printf("dmps-smoke: PASS — cross-partition quickstart over %s (%d nodes)\n", *router, len(nodeList))
	return 0
}

// scrape fetches one /metrics endpoint and checks it actually serves
// this system's series: an HTTP 200 with at least one dmps_ sample
// line. Anything else — refused connection, error status, empty or
// foreign exposition — fails the smoke. It returns the exposition so
// the caller can assert fleet-wide series coverage.
func scrape(addr string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "dmps_") {
			return string(body), nil
		}
	}
	return "", fmt.Errorf("no dmps_ series in %d-byte exposition", len(body))
}

// probeTraces fetches one endpoint's /debug/traces flight recorder and
// checks the tracing plane actually serves it: HTTP 200 carrying valid
// JSON with the page's origin field.
func probeTraces(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var page struct {
		Origin string `json:"origin"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if page.Origin == "" {
		return fmt.Errorf("page carries no origin")
	}
	return nil
}
