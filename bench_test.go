// Benchmarks regenerating every figure and experiment of DESIGN.md §4.
// Each BenchmarkF*/BenchmarkE* wraps the corresponding runner in
// internal/experiments (the same code cmd/dmps-bench prints tables from)
// and reports its headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation.
// Micro-benchmarks for the load-bearing substrates follow.
package dmps_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dmps"
	"dmps/internal/client"
	"dmps/internal/clock"
	"dmps/internal/cluster"
	"dmps/internal/core"
	"dmps/internal/experiments"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/ocpn"
	"dmps/internal/petri"
	"dmps/internal/protocol"
	"dmps/internal/whiteboard"
)

// reportDuration attaches a duration metric in milliseconds.
func reportDuration(b *testing.B, name string, d time.Duration) {
	b.Helper()
	b.ReportMetric(float64(d.Microseconds())/1000.0, name+"_ms")
}

func BenchmarkFigure1PresentationNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunF1()
		if err != nil {
			b.Fatal(err)
		}
		_ = tab.String()
	}
}

func BenchmarkFigure2CapabilityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunF2()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 8 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

func BenchmarkFigure3StatusLights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunF3()
		if err != nil {
			b.Fatal(err)
		}
		_ = tab
	}
}

func BenchmarkE1ArbitrationModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1([]int{2, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ClockDiscipline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunE2()
		if err != nil {
			b.Fatal(err)
		}
		_ = tab
	}
}

func BenchmarkE3SkewVsBaseline(b *testing.B) {
	var lastDocpn time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunE3()
		if err != nil {
			b.Fatal(err)
		}
		if d, err := time.ParseDuration(tab.Rows[len(tab.Rows)-1][1]); err == nil {
			lastDocpn = d
		}
	}
	reportDuration(b, "docpn_skew_at_100ms_spread", lastDocpn)
}

func BenchmarkE4PriorityInteraction(b *testing.B) {
	var prio time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunE4()
		if err != nil {
			b.Fatal(err)
		}
		if d, err := time.ParseDuration(tab.Rows[0][1]); err == nil {
			prio = d
		}
	}
	reportDuration(b, "priority_skip_latency", prio)
}

func BenchmarkE5ResourceDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6TokenFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE6([]int{4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7SubgroupsDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE7(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8ServerScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE8([]int{2, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9MediaStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE9([]int{2, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE11([]int{2, 8}, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12ClusterScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE12([]int{1, 2}, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkArbitrate measures the FCM-Arbitrate hot path for every
// registered policy — the four paper modes plus ModeratedQueue — so
// future PRs can track per-policy arbitration cost. Each iteration is
// one request (plus the release/teardown that keeps the floor free for
// the next grant in the exclusive modes).
func BenchmarkArbitrate(b *testing.B) {
	newClass := func(b *testing.B) (*group.Registry, *floor.Controller) {
		b.Helper()
		reg := group.NewRegistry()
		for _, m := range []group.Member{
			{ID: "teacher", Role: group.Chair, Priority: 5},
			{ID: "alice", Role: group.Participant, Priority: 2},
			{ID: "bob", Role: group.Participant, Priority: 2},
		} {
			if err := reg.Register(m); err != nil {
				b.Fatal(err)
			}
		}
		if err := reg.CreateGroup("class", "teacher"); err != nil {
			b.Fatal(err)
		}
		for _, id := range []group.MemberID{"alice", "bob"} {
			if err := reg.Join("class", id); err != nil {
				b.Fatal(err)
			}
		}
		return reg, floor.NewController(reg, nil)
	}

	b.Run("free-access", func(b *testing.B) {
		_, ctl := newClass(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.Arbitrate("class", "alice", floor.FreeAccess, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("equal-control", func(b *testing.B) {
		_, ctl := newClass(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.Arbitrate("class", "alice", floor.EqualControl, ""); err != nil {
				b.Fatal(err)
			}
			if _, err := ctl.Release("class", "alice"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("equal-control-queued", func(b *testing.B) {
		_, ctl := newClass(b)
		if _, err := ctl.Arbitrate("class", "alice", floor.EqualControl, ""); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Busy answers exercise the queue path.
			_, _ = ctl.Arbitrate("class", "bob", floor.EqualControl, "")
		}
	})
	b.Run("group-discussion", func(b *testing.B) {
		_, ctl := newClass(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.Arbitrate("class", "alice", floor.GroupDiscussion, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-contact", func(b *testing.B) {
		_, ctl := newClass(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.Arbitrate("class", "alice", floor.DirectContact, "bob"); err != nil {
				b.Fatal(err)
			}
			ctl.EndContact("class", "alice")
		}
	})
	b.Run("moderated-queue", func(b *testing.B) {
		_, ctl := newClass(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.Arbitrate("class", "alice", floor.ModeratedQueue, ""); !errors.Is(err, floor.ErrBusy) {
				b.Fatalf("want queued, got %v", err)
			}
			if _, err := ctl.Approve("class", "teacher", "alice"); err != nil {
				b.Fatal(err)
			}
			if _, err := ctl.Release("class", "alice"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBroadcast measures group fan-out over netsim: one server-
// originated message delivered to every member of an N-member group. The
// encodes/op metric proves the encode-once invariant (exactly one
// protocol.Encode per broadcast regardless of group size), and allocs/op
// must stay flat in N modulo the per-recipient delivery itself.
func BenchmarkBroadcast(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("members-%d", n), func(b *testing.B) {
			lab, err := core.NewLab(core.Options{Seed: int64(n), ProbeInterval: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			clients := make([]*client.Client, 0, n)
			for i := 0; i < n; i++ {
				c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Join("class"); err != nil {
					b.Fatal(err)
				}
				clients = append(clients, c)
			}
			// Converge in windows so bounded per-session queues never
			// overflow, whatever b.N is.
			const window = 128
			converged := func(upTo int64) {
				deadline := time.Now().Add(30 * time.Second)
				for _, c := range clients {
					for c.Board("class").Seq() < upTo {
						if time.Now().After(deadline) {
							b.Fatalf("fan-out stalled at %d/%d", c.Board("class").Seq(), upTo)
						}
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
			b.ReportAllocs()
			encBefore := protocol.EncodeCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := protocol.MustNew(protocol.TChatEvent, protocol.SequencedBody{
					Seq: int64(i + 1), Author: "bench", Kind: "text", Data: "fanout",
				})
				ev.Group = "class"
				lab.Server.Broadcast("class", ev)
				if (i+1)%window == 0 {
					converged(int64(i + 1))
				}
			}
			converged(int64(b.N))
			b.StopTimer()
			encoded := protocol.EncodeCount() - encBefore
			b.ReportMetric(float64(encoded)/float64(b.N), "encodes/op")
		})
	}
}

// BenchmarkArbitrateContention measures FCM-Arbitrate throughput when G
// independent groups arbitrate concurrently. Each parallel worker is
// pinned to one group; with per-group state sharding, ns/op should stay
// near-flat as G grows (groups never contend), whereas a single
// controller-wide mutex serializes all of them.
func BenchmarkArbitrateContention(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("groups-%d", g), func(b *testing.B) {
			reg := group.NewRegistry()
			for i := 0; i < g; i++ {
				id := group.MemberID(fmt.Sprintf("m%d", i))
				if err := reg.Register(group.Member{ID: id, Name: string(id), Role: group.Chair, Priority: 5}); err != nil {
					b.Fatal(err)
				}
				if err := reg.CreateGroup(fmt.Sprintf("g%d", i), id); err != nil {
					b.Fatal(err)
				}
			}
			ctl := floor.NewController(reg, nil)
			var next, failures atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				gi := int(next.Add(1)-1) % g
				gid := fmt.Sprintf("g%d", gi)
				mid := group.MemberID(fmt.Sprintf("m%d", gi))
				for pb.Next() {
					if _, err := ctl.Arbitrate(gid, mid, floor.FreeAccess, ""); err != nil {
						failures.Add(1)
						return
					}
				}
			})
			if failures.Load() > 0 {
				b.Fatalf("%d arbitrations failed", failures.Load())
			}
		})
	}
}

// BenchmarkQueueChurn measures queue-shifting floor churn over the live
// stack: four members rotate an Equal Control floor (the holder
// releases, promoting the queue front, then re-queues at the back), so
// every iteration shifts every queued member's slot. The headline
// metric is logged_queue_events/transition — coalesced queue
// restatements actually logged per queue-shifting transition. With
// coalescing (Config.CoalesceInterval) N transitions per tick collapse
// into one logged restatement, so the ratio must stay at or below 1.0;
// a regression to per-transition (or worse, per-queued-member)
// restatement pushes multiplies ring slots and fan-outs by the churn
// rate, and CI gates on it via cmd/dmps-benchjson.
func BenchmarkQueueChurn(b *testing.B) {
	lab, err := core.NewLab(core.Options{
		Seed:             7,
		ProbeInterval:    time.Hour,
		CoalesceInterval: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	const members = 4
	clients := make([]*client.Client, 0, members)
	for i := 0; i < members; i++ {
		c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Join("class"); err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
	}
	// m0 takes the floor; the rest queue behind it.
	if dec, err := clients[0].RequestFloor("class", floor.EqualControl, ""); err != nil || !dec.Granted {
		b.Fatalf("seed grant: %+v %v", dec, err)
	}
	for i := 1; i < members; i++ {
		if dec, err := clients[i].RequestFloor("class", floor.EqualControl, ""); err != nil || dec.QueuePosition != i {
			b.Fatalf("seed queue %d: %+v %v", i, dec, err)
		}
	}
	marked0, logged0 := lab.Server.CoalesceStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		holder := clients[i%members]
		if err := holder.ReleaseFloor("class"); err != nil {
			b.Fatalf("iter %d release: %v", i, err)
		}
		if _, err := holder.RequestFloor("class", floor.EqualControl, ""); err != nil {
			b.Fatalf("iter %d re-queue: %v", i, err)
		}
	}
	b.StopTimer()
	lab.Server.FlushQueueRestatements()
	marked, logged := lab.Server.CoalesceStats()
	if marked-marked0 > 0 {
		b.ReportMetric(float64(logged-logged0)/float64(marked-marked0), "logged_queue_events/transition")
	}
}

// BenchmarkBoardStorm measures an annotation storm over the live stack:
// one author streams whiteboard operations as fast as the
// request/response loop allows while a second replica follows. The
// headline metric is logged_board_events/op — coalesced logged events
// per board operation. With per-tick batching (contiguous same-author
// ops ride one logged event, flushed every CoalesceInterval or at the
// batch bound) the ratio sits far below 1.0; a regression to
// per-stroke logging multiplies ring slots and fan-outs by the storm
// rate, and CI gates on it via cmd/dmps-benchjson.
func BenchmarkBoardStorm(b *testing.B) {
	lab, err := core.NewLab(core.Options{
		Seed:             3,
		ProbeInterval:    time.Hour,
		CoalesceInterval: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	artist, err := lab.NewClient("artist", "participant", 2)
	if err != nil {
		b.Fatal(err)
	}
	viewer, err := lab.NewClient("viewer", "participant", 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []*client.Client{artist, viewer} {
		if err := c.Join("studio"); err != nil {
			b.Fatal(err)
		}
	}
	ops0, logged0 := lab.Server.BoardStormStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := artist.Annotate("studio", "draw", "stroke"); err != nil {
			b.Fatalf("iter %d: %v", i, err)
		}
	}
	b.StopTimer()
	lab.Server.FlushBoardBatches()
	deadline := time.Now().Add(30 * time.Second)
	for viewer.Board("studio").Seq() < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("storm stalled at %d/%d", viewer.Board("studio").Seq(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	ops, logged := lab.Server.BoardStormStats()
	if ops-ops0 > 0 {
		b.ReportMetric(float64(logged-logged0)/float64(ops-ops0), "logged_board_events/op")
	}
}

// BenchmarkClusterBroadcast measures the hot broadcast path of one
// cluster node: a group owned by node 1 of a 1-router + 2-node netsim
// cluster, every member connected through the router. The encodes/op
// metric proves the encode-once invariant survives the cluster plane —
// the node encodes each logged event exactly once for its whole
// fan-out, and successor replication reuses those bytes verbatim (its
// envelope wrap is plain marshalling of a per-append forward, not
// per-recipient work).
func BenchmarkClusterBroadcast(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(fmt.Sprintf("members-%d", n), func(b *testing.B) {
			cl, err := core.StartCluster(core.ClusterOptions{
				Options: core.Options{Seed: int64(n), ProbeInterval: time.Hour},
				Nodes:   2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			// A group owned by node 1, found under the lab addresses.
			gid := ""
			addrs := []string{core.NodeAddr(0), core.NodeAddr(1)}
			pmap := cluster.NewMap(addrs)
			for i := 0; gid == ""; i++ {
				if key := fmt.Sprintf("cbench%d", i); pmap.Primary(key) == 1 {
					gid = key
				}
			}
			clients := make([]*client.Client, 0, n)
			for i := 0; i < n; i++ {
				c, err := cl.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Join(gid); err != nil {
					b.Fatal(err)
				}
				clients = append(clients, c)
			}
			const window = 128
			converged := func(upTo int64) {
				deadline := time.Now().Add(30 * time.Second)
				for _, c := range clients {
					for c.Board(gid).Seq() < upTo {
						if time.Now().After(deadline) {
							b.Fatalf("routed fan-out stalled at %d/%d", c.Board(gid).Seq(), upTo)
						}
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
			b.ReportAllocs()
			encBefore := protocol.EncodeCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := protocol.MustNew(protocol.TChatEvent, protocol.SequencedBody{
					Seq: int64(i + 1), Author: "bench", Kind: "text", Data: "fanout",
				})
				ev.Group = gid
				cl.Nodes[1].Broadcast(gid, ev)
				if (i+1)%window == 0 {
					converged(int64(i + 1))
				}
			}
			converged(int64(b.N))
			b.StopTimer()
			encoded := protocol.EncodeCount() - encBefore
			b.ReportMetric(float64(encoded)/float64(b.N), "encodes/op")
		})
	}
}

func BenchmarkPetriFireChain(b *testing.B) {
	n := petri.New()
	_ = n.AddPlace("a", "")
	_ = n.AddPlace("z", "")
	_ = n.AddTransition("t", "")
	_ = n.AddInput("a", "t", 1)
	_ = n.AddOutput("t", "z", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := petri.NewMarking("a")
		if _, err := n.Fire(m, "t"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPetriReachabilityLecture(b *testing.B) {
	tl, err := experiments.LectureTimeline()
	if err != nil {
		b.Fatal(err)
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Base.Reachability(net.InitialMarking(), 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOCPNCompile(b *testing.B) {
	tl, err := experiments.LectureTimeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ocpn.Compile(tl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllenSolve(b *testing.B) {
	spec := dmps.Spec{
		Objects: []dmps.MediaObject{
			{ID: "slide", Kind: dmps.Image, Duration: 10 * time.Second},
			{ID: "narration", Kind: dmps.Audio, Duration: 10 * time.Second, Rate: 50},
			{ID: "clip", Kind: dmps.Video, Duration: 5 * time.Second, Rate: 30},
		},
		Constraints: []dmps.Constraint{
			{A: "slide", B: "narration", Rel: dmps.Equals},
			{A: "slide", B: "clip", Rel: dmps.Meets},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dmps.Solve(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhiteboardAppend(b *testing.B) {
	board := whiteboard.NewBoard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := board.Append("author", whiteboard.Text, "message"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolEncodeDecode(b *testing.B) {
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: "benchmark message"})
	msg.Group = "class"
	msg.Seq = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := protocol.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := protocol.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClockEstimator(b *testing.B) {
	base := clock.NewSim(time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC))
	master := clock.NewMaster(base)
	est := clock.NewEstimator(clock.NewDrift(base, -time.Second, 50e-6), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.SyncDirect(master)
		if _, err := est.GlobalNow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedSimulation(b *testing.B) {
	tl, err := experiments.LectureTimeline()
	if err != nil {
		b.Fatal(err)
	}
	sites := []dmps.SimSite{
		{Name: "a", ControlDelay: time.Millisecond, SyncErr: time.Millisecond},
		{Name: "b", ControlDelay: 40 * time.Millisecond, SyncErr: 2 * time.Millisecond, Drift: 80e-6},
		{Name: "c", ControlDelay: 90 * time.Millisecond, SyncErr: -time.Millisecond, Drift: -60e-6},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dmps.Simulate(dmps.SimConfig{Timeline: tl, Sites: sites, Mode: dmps.GlobalClock})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("unfinished")
		}
	}
}

func BenchmarkLivePresentationPlayout(b *testing.B) {
	tl := dmps.Timeline{Items: []dmps.ScheduledObject{
		{Object: dmps.MediaObject{ID: "s", Kind: dmps.Image, Duration: time.Millisecond}, Start: 0},
		{Object: dmps.MediaObject{ID: "v", Kind: dmps.Video, Duration: time.Millisecond, Rate: 30}, Start: time.Millisecond},
	}}
	master := clock.NewMaster(clock.Real{})
	est := clock.NewEstimator(clock.Real{}, 4)
	est.SyncDirect(master)
	player := dmps.PresentationPlayer{Site: "bench", Estimator: est}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := master.GlobalNow()
		if _, err := player.Play(context.Background(), tl, start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConflictResolution compares the paper's priority-arc
// conflict rule against plain deterministic choice on a contended place.
func BenchmarkAblationConflictResolution(b *testing.B) {
	n := petri.New()
	_ = n.AddPlace("shared", "")
	for i := 0; i < 8; i++ {
		tid := petri.TransitionID(fmt.Sprintf("t%d", i))
		_ = n.AddTransition(tid, "")
		out := petri.PlaceID(fmt.Sprintf("o%d", i))
		_ = n.AddPlace(out, "")
		if i == 3 {
			_ = n.AddPriorityInput("shared", tid, 1)
		} else {
			_ = n.AddInput("shared", tid, 1)
		}
		_ = n.AddOutput(tid, out, 1)
	}
	m := petri.NewMarking("shared")
	enabled := n.EnabledSet(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := n.ResolveConflict(m, enabled); got != "t3" {
			b.Fatalf("conflict resolution picked %s", got)
		}
	}
}
