module dmps

go 1.22
